//! Shared workload generators for the benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the paper's figures and table
//! (`fig1`, `fig2_snn`, `fig2_gnn`, `table1`, `claims`); the criterion
//! benches in `benches/` measure the performance-sensitive kernels
//! (frame encoding, compression, graph construction, LIF stepping, the AER
//! codec). See DESIGN.md §3 for the experiment index.

use evlab_events::{Event, EventStream, Polarity};
use evlab_util::{obs, EvlabError, Rng64};

pub mod alloc;
pub mod chaos;

/// Parses the `--metrics PATH` flag shared by the harness binaries.
///
/// When the flag is present, observability collection is also switched on
/// (equivalent to setting `EVLAB_OBS=1`), so asking for a metrics file is
/// enough to get one — no separate env dance required.
pub fn metrics_arg(args: &[String]) -> Option<String> {
    let path = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if path.is_some() {
        obs::set_enabled(true);
    }
    path
}

/// Writes the observability snapshot to `path` (atomically: temp file +
/// rename) and prints the human-readable summary to stderr. Does nothing
/// when no `--metrics` path was given.
///
/// # Errors
///
/// Returns an error if the metrics file cannot be written.
pub fn finish_metrics(path: &Option<String>) -> Result<(), EvlabError> {
    let Some(path) = path else { return Ok(()) };
    obs::write_metrics(path)?;
    print_obs_summary();
    eprintln!("[obs] wrote {path}");
    Ok(())
}

/// Prints every recorded counter and span histogram to stderr.
pub fn print_obs_summary() {
    let counters = obs::counters();
    let spans = obs::spans();
    if counters.is_empty() && spans.is_empty() {
        eprintln!(
            "[obs] nothing recorded (set {}=1 or pass --metrics)",
            obs::ENV_TOGGLE
        );
        return;
    }
    eprintln!("[obs] counters:");
    for (name, v) in counters {
        eprintln!("[obs]   {name:<44} {v}");
    }
    if !spans.is_empty() {
        eprintln!("[obs] spans:");
        for (name, h) in spans {
            eprintln!(
                "[obs]   {name:<44} n={} mean={:.1}us max={:.1}us",
                h.count,
                h.mean_us(),
                h.max_us
            );
        }
    }
}

/// A random (time-sorted) event stream of `n` events over `span_us` on a
/// square sensor: uniform spatial noise, the worst case for spatial
/// locality.
pub fn uniform_stream(n: usize, res: u16, span_us: u64, seed: u64) -> EventStream {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut ts: Vec<u64> = (0..n).map(|_| rng.next_below(span_us.max(1))).collect();
    ts.sort_unstable();
    let events: Vec<Event> = ts
        .into_iter()
        .map(|t| {
            Event::new(
                t,
                rng.next_below(res as u64) as u16,
                rng.next_below(res as u64) as u16,
                if rng.bernoulli(0.5) {
                    Polarity::On
                } else {
                    Polarity::Off
                },
            )
        })
        .collect();
    EventStream::from_events((res, res), events).expect("sorted and in bounds")
}

/// A clustered stream: events follow a moving hot spot — the typical
/// structure real scenes produce, and the best case for spatial hashing.
pub fn moving_cluster_stream(n: usize, res: u16, span_us: u64, seed: u64) -> EventStream {
    let mut rng = Rng64::seed_from_u64(seed);
    let events: Vec<Event> = (0..n)
        .map(|i| {
            let t = span_us * i as u64 / n.max(1) as u64;
            let cx = (res as f64 * 0.2
                + res as f64 * 0.6 * i as f64 / n.max(1) as f64) as i64;
            let cy = res as i64 / 2;
            let x = (cx + rng.gaussian(0.0, 2.0) as i64).clamp(0, res as i64 - 1);
            let y = (cy + rng.gaussian(0.0, 2.0) as i64).clamp(0, res as i64 - 1);
            Event::new(
                t,
                x as u16,
                y as u16,
                if rng.bernoulli(0.5) {
                    Polarity::On
                } else {
                    Polarity::Off
                },
            )
        })
        .collect();
    EventStream::from_events((res, res), events).expect("sorted and in bounds")
}

/// A flat feature map with the given zero fraction (for the compression
/// benches).
pub fn sparse_map(len: usize, zero_fraction: f64, seed: u64) -> Vec<f32> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.bernoulli(zero_fraction) {
                0.0
            } else {
                rng.next_f32() + 0.01
            }
        })
        .collect()
}

/// Incremental FNV-1a (64-bit) hasher used to fingerprint hot-path
/// outputs: the `hotpaths` binary requires the fingerprint to be
/// bit-identical across every thread count.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Creates a hasher with the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f32` by its exact bit pattern.
    pub fn write_f32(&mut self, v: f32) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Fingerprints an event stream (timestamps, coordinates, polarities, in
/// order).
pub fn checksum_events(stream: &EventStream) -> u64 {
    let mut h = Fnv1a::new();
    for e in stream.iter() {
        h.write_u64(e.t.as_micros());
        h.write(&e.x.to_le_bytes());
        h.write(&e.y.to_le_bytes());
        h.write(&[e.polarity.bit() as u8]);
    }
    h.finish()
}

/// Fingerprints a float slice by exact bit patterns.
pub fn checksum_f32s(values: &[f32]) -> u64 {
    let mut h = Fnv1a::new();
    for &v in values {
        h.write_f32(v);
    }
    h.finish()
}

/// Fingerprints a graph's adjacency structure (node count plus every
/// in-neighbour list, in node order).
pub fn checksum_graph(graph: &evlab_gnn::graph::EventGraph) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(graph.node_count() as u64);
    for i in 0..graph.node_count() {
        for &j in graph.in_neighbors(i) {
            h.write_u64(j as u64);
        }
        h.write_u64(u64::MAX); // list separator
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_inputs_and_is_stable() {
        let a = checksum_f32s(&[1.0, 2.0, 3.0]);
        let b = checksum_f32s(&[1.0, 2.0, 3.5]);
        assert_ne!(a, b);
        assert_eq!(a, checksum_f32s(&[1.0, 2.0, 3.0]));
        // -0.0 and 0.0 hash differently: bit-exactness, not equality.
        assert_ne!(checksum_f32s(&[0.0]), checksum_f32s(&[-0.0]));
    }

    #[test]
    fn uniform_stream_is_valid() {
        let s = uniform_stream(500, 64, 10_000, 1);
        assert_eq!(s.len(), 500);
        assert!(s.duration_us() <= 10_000);
    }

    #[test]
    fn cluster_stream_is_local() {
        let s = moving_cluster_stream(500, 128, 10_000, 2);
        // Consecutive events stay close in space.
        let close = s
            .as_slice()
            .windows(2)
            .filter(|w| {
                let dx = (w[0].x as i32 - w[1].x as i32).abs();
                let dy = (w[0].y as i32 - w[1].y as i32).abs();
                dx <= 10 && dy <= 10
            })
            .count();
        assert!(close > 400, "cluster not local: {close}");
    }

    #[test]
    fn sparse_map_hits_target() {
        let m = sparse_map(10_000, 0.9, 3);
        let zeros = m.iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f64 / 10_000.0 - 0.9).abs() < 0.02);
    }
}
