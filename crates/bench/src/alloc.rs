//! Heap-allocation accounting for the benchmark binaries.
//!
//! The `count-alloc` feature compiles a counting wrapper around the system
//! allocator; the `hotpaths` binary installs it as `#[global_allocator]`
//! when the feature is enabled. Workloads bracket their steady-state inner
//! loop with [`snapshot`] / [`delta_since`] and publish the measured delta
//! through [`record_steady`]; `scripts/verify.sh` then compares the
//! published deltas against the committed `BENCH_alloc_budget.json`
//! (all-zero for the arena-backed kernels).
//!
//! Without the feature the counters never move: [`counting_enabled`]
//! returns `false`, every snapshot reads zero, and the gate is skipped.
//! The accounting therefore never perturbs default (timed) runs.
//!
//! Counting is process-global, so steady-state sections must not overlap
//! with unrelated allocating work on other threads. The instrumented
//! kernels *are* multi-threaded now, but their workers draw from
//! per-worker thread-local arenas warmed before [`snapshot`] (workloads
//! warm up at the measured thread count first), and `hotpaths` runs
//! workloads one at a time — so a nonzero delta always means a real
//! steady-state allocation somewhere in the kernel, on any thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that counts allocation events and bytes before
/// delegating to [`System`]. Deallocations are not tracked — the budget
/// gate cares about allocation *pressure*, not live-set size.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

// SAFETY: delegates every operation directly to `System`; the atomic
// bumps have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink is one allocation event for `new_size` bytes: a
        // Vec that doubles in a "steady-state" loop still shows up.
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Whether the counting allocator is compiled in (the `count-alloc`
/// feature). When `false`, snapshots always read zero and the alloc
/// budget gate must be skipped.
pub fn counting_enabled() -> bool {
    cfg!(feature = "count-alloc")
}

/// Cumulative allocation counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Allocation events (alloc + realloc calls) so far.
    pub count: u64,
    /// Bytes requested by those events.
    pub bytes: u64,
}

/// Reads the current cumulative counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        count: ALLOC_COUNT.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Counters accumulated since `start` (saturating, in case `start` came
/// from a different process run — it never should).
pub fn delta_since(start: AllocSnapshot) -> AllocSnapshot {
    let now = snapshot();
    AllocSnapshot {
        count: now.count.saturating_sub(start.count),
        bytes: now.bytes.saturating_sub(start.bytes),
    }
}

static STEADY: Mutex<BTreeMap<&'static str, AllocSnapshot>> = Mutex::new(BTreeMap::new());

/// Publishes the steady-state allocation delta a workload measured for
/// itself. Repeated records for the same name keep the *worst* (largest
/// count) observation, so a sweep over thread counts gates on its worst
/// cell.
pub fn record_steady(name: &'static str, delta: AllocSnapshot) {
    let mut map = STEADY.lock().expect("alloc registry poisoned");
    let entry = map.entry(name).or_default();
    if delta.count > entry.count || (delta.count == entry.count && delta.bytes > entry.bytes) {
        *entry = delta;
    }
}

/// All published steady-state records, sorted by workload name.
pub fn steady_records() -> Vec<(&'static str, AllocSnapshot)> {
    STEADY
        .lock()
        .expect("alloc registry poisoned")
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_saturating_and_registry_keeps_worst() {
        let d = delta_since(AllocSnapshot {
            count: u64::MAX,
            bytes: u64::MAX,
        });
        assert_eq!(d, AllocSnapshot { count: 0, bytes: 0 });
        record_steady("test.worst", AllocSnapshot { count: 2, bytes: 10 });
        record_steady("test.worst", AllocSnapshot { count: 1, bytes: 99 });
        record_steady("test.worst", AllocSnapshot { count: 2, bytes: 30 });
        let rec = steady_records()
            .into_iter()
            .find(|(n, _)| *n == "test.worst")
            .expect("recorded");
        assert_eq!(rec.1, AllocSnapshot { count: 2, bytes: 30 });
    }

    #[test]
    fn snapshot_moves_only_when_counting() {
        let before = snapshot();
        let v: Vec<u8> = Vec::with_capacity(4096);
        drop(v);
        let d = delta_since(before);
        if counting_enabled() {
            assert!(d.count >= 1, "allocation not counted");
        } else {
            assert_eq!(d.count, 0, "counters must stay zero without the feature");
        }
    }
}
