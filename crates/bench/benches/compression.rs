//! FIG2-CNN: compressed feature-map formats (Fig. 2 centre) across
//! sparsity levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evlab_bench::sparse_map;
use evlab_tensor::sparse::{SparsityMapEncoding, ZeroRunLength};
use std::hint::black_box;
use std::time::Duration;

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &sparsity in &[0.5f64, 0.8, 0.95] {
        let map = sparse_map(65_536, sparsity, 7);
        group.bench_with_input(
            BenchmarkId::new("sparsity_map_encode", format!("{sparsity}")),
            &map,
            |b, m| b.iter(|| black_box(SparsityMapEncoding::encode(black_box(m)))),
        );
        group.bench_with_input(
            BenchmarkId::new("zrle_encode", format!("{sparsity}")),
            &map,
            |b, m| b.iter(|| black_box(ZeroRunLength::encode(black_box(m)))),
        );
        let enc = SparsityMapEncoding::encode(&map);
        group.bench_with_input(
            BenchmarkId::new("sparsity_map_decode", format!("{sparsity}")),
            &enc,
            |b, e| b.iter(|| black_box(e.decode())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
