//! FIG2-SNN: LIF dynamics — single-neuron stepping and layer-level clocked
//! updates at different input activity levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evlab_snn::layer::LifLayer;
use evlab_snn::neuron::{LifConfig, LifNeuron};
use evlab_tensor::OpCount;
use evlab_util::Rng64;
use std::hint::black_box;
use std::time::Duration;

fn bench_lif(c: &mut Criterion) {
    let mut group = c.benchmark_group("lif");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("single_neuron_1k_steps", |b| {
        b.iter(|| {
            let mut n = LifNeuron::new(&LifConfig::new());
            let mut spikes = 0u32;
            for t in 0..1000 {
                if n.step(black_box(0.1 + (t % 7) as f32 * 0.05)).fired() {
                    spikes += 1;
                }
            }
            black_box(spikes)
        })
    });

    let mut rng = Rng64::seed_from_u64(1);
    let mut layer = LifLayer::new(1024, 256, LifConfig::new(), &mut rng);
    for &active in &[0usize, 16, 128, 1024] {
        let mut input = vec![0.0f32; 1024];
        for i in 0..active {
            input[i * (1024 / active.max(1)).max(1) % 1024] = 1.0;
        }
        group.bench_with_input(
            BenchmarkId::new("layer_1024x256_step", active),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut ops = OpCount::new();
                    black_box(layer.step(black_box(input), &mut ops))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lif);
criterion_main!(benches);
