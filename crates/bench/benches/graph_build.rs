//! FIG2-GNN / CL-F: event-graph construction strategies — the naive scan,
//! the kd-tree batch build, and the incremental spatial-hash insertion
//! whose speed-up §IV credits with making real-time event graphs possible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evlab_bench::moving_cluster_stream;
use evlab_gnn::build::{incremental_build, kdtree_build, naive_build, GraphConfig};
use evlab_tensor::OpCount;
use std::hint::black_box;
use std::time::Duration;

fn bench_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let config = GraphConfig::new();
    for &n in &[1_000usize, 5_000, 20_000] {
        let stream = moving_cluster_stream(n, 256, 100_000, 3);
        let events = stream.as_slice();
        if n <= 5_000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| {
                    let mut ops = OpCount::new();
                    black_box(naive_build(black_box(events), &config, &mut ops))
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("kdtree", n), &n, |b, _| {
            b.iter(|| {
                let mut ops = OpCount::new();
                black_box(kdtree_build(black_box(events), &config, &mut ops))
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut ops = OpCount::new();
                black_box(incremental_build(black_box(events), &config, &mut ops))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builders);
criterion_main!(benches);
