//! CL-B: clocked vs event-driven SNN simulation cost across input
//! activity levels — the [42]/[44] trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evlab_snn::encode::SpikeTrain;
use evlab_snn::event_driven::EventDrivenSnn;
use evlab_snn::network::{SnnConfig, SnnNetwork};
use evlab_tensor::OpCount;
use evlab_util::Rng64;
use std::hint::black_box;
use std::time::Duration;

fn make_train(spikes_per_step: usize, seed: u64) -> SpikeTrain {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = SpikeTrain::new(128, 30);
    for step in 0..30 {
        for _ in 0..spikes_per_step {
            t.push(step, rng.next_index(128) as u32);
        }
    }
    t
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_policy");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let mut rng = Rng64::seed_from_u64(1);
    let mut net = SnnNetwork::new(SnnConfig::new(128, 4).with_hidden(vec![128]), &mut rng);
    let mut ed = EventDrivenSnn::from_network(&net);
    for &activity in &[1usize, 8, 64] {
        let train = make_train(activity, 7);
        group.bench_with_input(
            BenchmarkId::new("clocked", activity),
            &train,
            |b, train| {
                b.iter(|| {
                    let mut ops = OpCount::new();
                    black_box(net.forward(black_box(train), &mut ops))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("event_driven", activity),
            &train,
            |b, train| {
                b.iter(|| {
                    let mut ops = OpCount::new();
                    black_box(ed.process(black_box(train), &mut ops))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
