//! T1-R12 / §IV: per-event asynchronous GNN inference vs full recompute.

use criterion::{criterion_group, criterion_main, Criterion};
use evlab_bench::moving_cluster_stream;
use evlab_gnn::async_update::AsyncGnn;
use evlab_gnn::build::{GraphConfig, IncrementalGraphBuilder};
use evlab_gnn::network::{GnnConfig, GnnNetwork};
use evlab_tensor::OpCount;
use evlab_util::Rng64;
use std::hint::black_box;
use std::time::Duration;

fn bench_async(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_gnn");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let stream = moving_cluster_stream(500, 64, 30_000, 1);
    let config = GraphConfig::new();

    group.bench_function("stream_500_events_async", |b| {
        b.iter(|| {
            let mut rng = Rng64::seed_from_u64(1);
            let net = GnnNetwork::new(&GnnConfig::new(4), &mut rng);
            let mut engine = AsyncGnn::new(net, config, 4);
            let mut ops = OpCount::new();
            for e in stream.iter() {
                black_box(engine.update(*e, &mut ops));
            }
        })
    });

    group.bench_function("stream_500_events_full_recompute", |b| {
        b.iter(|| {
            let mut rng = Rng64::seed_from_u64(1);
            let mut net = GnnNetwork::new(&GnnConfig::new(4), &mut rng);
            let mut builder = IncrementalGraphBuilder::new(config);
            let mut ops = OpCount::new();
            for e in stream.iter() {
                builder.insert(*e, &mut ops);
                black_box(net.forward(builder.graph(), &mut ops));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_async);
criterion_main!(benches);
