//! CL-G: camera simulation under egomotion at increasing resolution, with
//! and without in-sensor downsampling — the §II mitigation experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evlab_events::downsample::SpatialDownsampler;
use evlab_sensor::scene::EgomotionPan;
use evlab_sensor::{CameraConfig, EventCamera, PixelConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_egomotion(c: &mut Criterion) {
    let mut group = c.benchmark_group("egomotion");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &res in &[32u16, 64, 128] {
        let camera = EventCamera::new(
            CameraConfig::new((res, res))
                .with_pixel(PixelConfig::ideal())
                .with_sample_period_us(1_000),
        );
        let scene = EgomotionPan::new(0.002, 6.0, 7);
        group.bench_with_input(BenchmarkId::new("record_10ms", res), &res, |b, _| {
            b.iter(|| black_box(camera.record(&scene, 0, 10_000, 1)))
        });
        let stream = camera.record(&scene, 0, 10_000, 1);
        group.bench_with_input(BenchmarkId::new("downsample_2x", res), &res, |b, _| {
            let down = SpatialDownsampler::new(2, 1_000);
            b.iter(|| black_box(down.apply(black_box(&stream))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_egomotion);
criterion_main!(benches);
