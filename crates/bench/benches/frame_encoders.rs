//! FIG2-CNN: throughput of the event-to-frame encoders (the CNN
//! data-preparation stage of Fig. 2 centre).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evlab_bench::uniform_stream;
use evlab_cnn::encode::{
    FrameEncoder, LinearTimeSurface, SignedCount, TimeSurface, TwoChannel, VoxelGrid,
};
use evlab_tensor::OpCount;
use std::hint::black_box;
use std::time::Duration;

fn bench_encoders(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_encoders");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let stream = uniform_stream(50_000, 64, 50_000, 1);
    let encoders: Vec<(&str, Box<dyn FrameEncoder>)> = vec![
        ("signed_count", Box::new(SignedCount::new())),
        ("two_channel", Box::new(TwoChannel::new())),
        ("time_surface", Box::new(TimeSurface::new(10_000.0))),
        ("linear_surface", Box::new(LinearTimeSurface::new(50_000))),
        ("voxel_grid_5", Box::new(VoxelGrid::new(5))),
    ];
    for (name, encoder) in &encoders {
        group.bench_with_input(BenchmarkId::new("50k_events", name), name, |b, _| {
            b.iter(|| {
                let mut ops = OpCount::new();
                black_box(encoder.encode(black_box(stream.as_slice()), (64, 64), &mut ops))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoders);
criterion_main!(benches);
