//! AER codec throughput and the readout-bus model — the sensor-output path
//! of §II.

use criterion::{criterion_group, criterion_main, Criterion};
use evlab_bench::uniform_stream;
use evlab_events::aer::{AerBus, AerCodec};
use std::hint::black_box;
use std::time::Duration;

fn bench_aer(c: &mut Criterion) {
    let mut group = c.benchmark_group("aer");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let stream = uniform_stream(100_000, 1280, 100_000, 1);
    let codec = AerCodec::new((1280, 720));
    // Clamp y into range for the 1280x720 codec.
    let events: Vec<_> = stream
        .as_slice()
        .iter()
        .map(|e| evlab_events::Event::new(e.t.as_micros(), e.x, e.y % 720, e.polarity))
        .collect();
    let words = codec.encode_all(&events);

    group.bench_function("encode_100k", |b| {
        b.iter(|| black_box(codec.encode_all(black_box(&events))))
    });
    group.bench_function("decode_100k", |b| {
        b.iter(|| black_box(codec.decode_all(black_box(&words)).expect("valid words")))
    });
    group.bench_function("bus_transfer_100k", |b| {
        let bus = AerBus::new(1.066e9, 8192);
        b.iter(|| black_box(bus.transfer(black_box(&stream))))
    });
    group.finish();
}

criterion_group!(benches, bench_aer);
criterion_main!(benches);
