//! Determinism contract of the chaos harness: a faulted serving cell must
//! replay bit-identically under `EVLAB_THREADS=1` and `EVLAB_THREADS=4`.
//!
//! Fault injection happens serially at ingest and the serve scheduler's
//! per-session work is independent, so every deterministic field of a
//! [`CellOutcome`] — final decisions, quarantine/late-drop/restart
//! counters, injector reports — must be invariant to the worker count.
//! The cells chosen here exercise all three fault paths (packet drop at
//! the sensor boundary, AER word corruption at serve ingress, timestamp
//! jitter through the reorder buffer) across all three paradigms.

use evlab_bench::chaos::{self, FaultKind};
use evlab_util::par;

#[test]
fn chaos_cells_are_thread_invariant() {
    let (paradigms, data) = chaos::train_paradigms(2);
    let cells = [
        ("snn", FaultKind::Drop, 0.4),
        ("cnn", FaultKind::Corrupt, 0.3),
        ("gnn", FaultKind::Reorder, 0.5),
    ];
    for (paradigm, kind, rate) in cells {
        let spec = kind.spec(rate, 41).expect("valid spec");
        let run = |threads: usize| {
            par::with_threads(threads, || {
                chaos::run_cell(
                    &paradigms,
                    paradigm,
                    &data.test,
                    data.resolution,
                    &spec,
                    kind.word_stage(),
                )
                .expect("cell runs")
            })
        };
        let serial = run(1);
        let threaded = run(4);
        assert_eq!(
            serial.decisions,
            threaded.decisions,
            "{paradigm}/{}: decisions differ across thread counts",
            kind.key()
        );
        assert_eq!(
            serial.determinism_key(),
            threaded.determinism_key(),
            "{paradigm}/{}: outcome differs across thread counts",
            kind.key()
        );
        // The cell must actually have been degraded, or the contract
        // above is vacuous.
        let touched = serial.fault.dropped
            + serial.fault.corrupted
            + serial.fault.reordered
            + serial.quarantined
            + serial.late_dropped;
        assert!(touched > 0, "{paradigm}/{}: no faults fired", kind.key());
    }
}
