//! The Leaky-Integrate-and-Fire neuron.
//!
//! The paper (§III-A): "The LIF neuron uses one equation to model the
//! behaviour of the membrane potential of the neuron — corresponding to a
//! simple resistor-capacitor circuit — and is the model of choice for most
//! SNNs." The discrete-time form used throughout `evlab` is
//!
//! ```text
//! v[t] = λ · v[t-1] + I[t] − θ · s[t-1]      (subtraction reset)
//! s[t] = H(v[t] − θ)
//! ```
//!
//! with leak factor `λ = exp(−dt/τ_m)`.

/// LIF neuron parameters (per-layer constants on neuromorphic hardware).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifConfig {
    /// Membrane leak factor per timestep, `λ = exp(-dt/τ_m)`.
    pub leak: f32,
    /// Firing threshold θ.
    pub threshold: f32,
    /// Refractory period in timesteps (0 disables).
    pub refractory_steps: u32,
}

impl LifConfig {
    /// A standard configuration: λ = 0.9, θ = 1.0, no refractory period.
    pub fn new() -> Self {
        LifConfig {
            leak: 0.9,
            threshold: 1.0,
            refractory_steps: 0,
        }
    }

    /// Builds the leak factor from a membrane time constant and timestep.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not strictly positive.
    pub fn from_tau(tau_us: f64, dt_us: f64) -> Self {
        assert!(tau_us > 0.0 && dt_us > 0.0, "times must be positive");
        LifConfig {
            leak: (-dt_us / tau_us).exp() as f32,
            threshold: 1.0,
            refractory_steps: 0,
        }
    }

    /// Returns a copy with a different threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold <= 0`.
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        self.threshold = threshold;
        self
    }

    /// Returns a copy with a refractory period.
    pub fn with_refractory(mut self, steps: u32) -> Self {
        self.refractory_steps = steps;
        self
    }
}

impl Default for LifConfig {
    fn default() -> Self {
        LifConfig::new()
    }
}

/// Result of one neuron timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Membrane potential after integration (before any reset).
    pub membrane: f32,
    /// Whether the neuron crossed threshold this step.
    pub spiked: bool,
}

impl StepOutcome {
    /// Whether the neuron fired.
    pub fn fired(&self) -> bool {
        self.spiked
    }
}

/// A single LIF neuron with explicit state, for unit-level experiments
/// (Fig. 2 left).
#[derive(Debug, Clone, PartialEq)]
pub struct LifNeuron {
    config: LifConfig,
    v: f32,
    refractory_left: u32,
}

impl LifNeuron {
    /// Creates a neuron at rest.
    pub fn new(config: &LifConfig) -> Self {
        LifNeuron {
            config: *config,
            v: 0.0,
            refractory_left: 0,
        }
    }

    /// Current membrane potential.
    pub fn membrane(&self) -> f32 {
        self.v
    }

    /// Advances one timestep with input current `i`.
    pub fn step(&mut self, i: f32) -> StepOutcome {
        if self.refractory_left > 0 {
            self.refractory_left -= 1;
            self.v *= self.config.leak;
            return StepOutcome {
                membrane: self.v,
                spiked: false,
            };
        }
        self.v = self.config.leak * self.v + i;
        let spiked = self.v >= self.config.threshold;
        let membrane = self.v;
        if spiked {
            self.v -= self.config.threshold;
            self.refractory_left = self.config.refractory_steps;
        }
        StepOutcome { membrane, spiked }
    }

    /// Resets to the rest state.
    pub fn reset(&mut self) {
        self.v = 0.0;
        self.refractory_left = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_and_fires() {
        let mut n = LifNeuron::new(&LifConfig::new());
        // Constant current 0.3 with leak 0.9: steady state v* = 3.0 > θ.
        let mut first_spike = None;
        for t in 0..50 {
            if n.step(0.3).fired() && first_spike.is_none() {
                first_spike = Some(t);
            }
        }
        let t = first_spike.expect("must fire");
        assert!(t >= 2, "needs a few steps to integrate, fired at {t}");
    }

    #[test]
    fn subthreshold_input_never_fires() {
        // Steady state 0.05 / (1 - 0.9) = 0.5 < 1.0.
        let mut n = LifNeuron::new(&LifConfig::new());
        for _ in 0..500 {
            assert!(!n.step(0.05).fired());
        }
        assert!(n.membrane() < 1.0);
    }

    #[test]
    fn leak_decays_toward_rest() {
        let mut n = LifNeuron::new(&LifConfig::new());
        n.step(0.8);
        let v1 = n.membrane();
        n.step(0.0);
        assert!((n.membrane() - v1 * 0.9).abs() < 1e-6);
    }

    #[test]
    fn subtraction_reset_preserves_residual() {
        let mut n = LifNeuron::new(&LifConfig::new().with_threshold(1.0));
        let out = n.step(1.7);
        assert!(out.fired());
        assert!((n.membrane() - 0.7).abs() < 1e-6, "residual kept");
    }

    #[test]
    fn refractory_blocks_firing() {
        let cfg = LifConfig::new().with_refractory(3);
        let mut n = LifNeuron::new(&cfg);
        assert!(n.step(2.0).fired());
        for _ in 0..3 {
            assert!(!n.step(2.0).fired(), "refractory must block");
        }
        assert!(n.step(2.0).fired(), "recovers after refractory");
    }

    #[test]
    fn firing_rate_grows_with_input() {
        let rate = |i: f32| {
            let mut n = LifNeuron::new(&LifConfig::new());
            (0..1000).filter(|_| n.step(i).fired()).count()
        };
        let low = rate(0.15);
        let high = rate(0.6);
        assert!(high > 2 * low, "rate {low} -> {high}");
    }

    #[test]
    fn from_tau_leak() {
        let cfg = LifConfig::from_tau(10_000.0, 1_000.0);
        assert!((cfg.leak - (-0.1f32).exp()).abs() < 1e-6);
    }

    #[test]
    fn reset_restores_rest() {
        let mut n = LifNeuron::new(&LifConfig::new());
        n.step(0.9);
        n.reset();
        assert_eq!(n.membrane(), 0.0);
    }
}
