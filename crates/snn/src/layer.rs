//! A fully-connected layer of LIF neurons, simulated with a clocked
//! timestep.
//!
//! The weighted-sum update is *event-driven*: only the synapses of input
//! neurons that spiked this step are accessed, and each such access is an
//! addition, not a multiplication — the cost structure §III-A attributes to
//! SNN hardware. The membrane decay, by contrast, is a clocked per-neuron
//! multiply every timestep, which is exactly why clocked neuromorphic cores
//! do not fully exploit sparsity (§III-A, [42]).

use crate::neuron::LifConfig;
use evlab_tensor::init::he_normal;
use evlab_tensor::layer::Param;
use evlab_tensor::OpCount;
use evlab_util::{obs, par, Rng64};

/// Minimum `out_size x (active inputs + 1)` work before [`LifLayer::step`]
/// fans out across threads; below this the spawn overhead dominates.
const PAR_WORK_THRESHOLD: usize = 50_000;

/// State and cache of one clocked step of a layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStep {
    /// Membrane potentials after integration, before reset (the surrogate's
    /// argument is `membrane − θ`).
    pub membrane: Vec<f32>,
    /// Binary spikes emitted this step.
    pub spikes: Vec<f32>,
}

/// A fully-connected LIF layer.
#[derive(Debug, Clone)]
pub struct LifLayer {
    weight: Param, // [out, in]
    config: LifConfig,
    in_size: usize,
    out_size: usize,
    v: Vec<f32>,
    refractory_left: Vec<u32>,
    /// Reused gather buffer of `(index, value)` spiking inputs, so the
    /// steady-state [`LifLayer::step_into`] path allocates nothing.
    active_buf: Vec<(usize, f32)>,
}

impl LifLayer {
    /// Creates a layer with He-initialized weights scaled for spiking
    /// activity.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(in_size: usize, out_size: usize, config: LifConfig, rng: &mut Rng64) -> Self {
        assert!(in_size > 0 && out_size > 0, "zero-sized layer");
        let mut weight = he_normal(&[out_size, in_size], in_size, rng);
        // Gain so that a handful of coincident spikes can reach threshold.
        weight.scale_assign(2.0);
        LifLayer {
            weight: Param::new(weight),
            config,
            in_size,
            out_size,
            v: vec![0.0; out_size],
            refractory_left: vec![0; out_size],
            active_buf: Vec::new(),
        }
    }

    /// Input dimensionality.
    pub fn in_size(&self) -> usize {
        self.in_size
    }

    /// Output dimensionality.
    pub fn out_size(&self) -> usize {
        self.out_size
    }

    /// The LIF configuration.
    pub fn config(&self) -> &LifConfig {
        &self.config
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable weight parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Resets all membranes to rest.
    pub fn reset(&mut self) {
        self.v.iter_mut().for_each(|v| *v = 0.0);
        self.refractory_left.iter_mut().for_each(|r| *r = 0);
    }

    /// Advances one clocked timestep given the dense input spike vector.
    ///
    /// Cost model: one decay multiply + one threshold compare per neuron per
    /// step (clocked), plus one add per synapse of each *spiking* input
    /// (event-driven).
    ///
    /// Refractory semantics: a refractory neuron keeps integrating (its
    /// membrane evolves) but cannot fire — the usual discrete-simulator
    /// convention; the analog [`crate::neuron::LifNeuron`] instead clamps
    /// its input during the dead time.
    ///
    /// # Panics
    ///
    /// Panics if `input_spikes.len() != in_size`.
    pub fn step(&mut self, input_spikes: &[f32], ops: &mut OpCount) -> LayerStep {
        let mut step = LayerStep {
            membrane: Vec::new(),
            spikes: Vec::new(),
        };
        self.step_into(input_spikes, &mut step, ops);
        step
    }

    /// Allocation-free variant of [`LifLayer::step`]: writes the result
    /// into a caller-owned `step`, resizing its vectors to `out_size`.
    /// Reusing the same `LayerStep` across timesteps makes the steady
    /// state allocation-free; the arithmetic is identical to `step`.
    ///
    /// # Panics
    ///
    /// Panics if `input_spikes.len() != in_size`.
    pub fn step_into(&mut self, input_spikes: &[f32], step: &mut LayerStep, ops: &mut OpCount) {
        assert_eq!(input_spikes.len(), self.in_size, "input size mismatch");
        let w = self.weight.value.as_slice();
        let leak = self.config.leak;
        let threshold = self.config.threshold;
        let refractory_steps = self.config.refractory_steps;
        let in_size = self.in_size;
        // Event-driven: gather the spiking inputs once (into the reused
        // buffer); every output neuron then integrates them in the same
        // ascending-index order, so the per-neuron arithmetic is
        // identical under any chunking.
        let mut active = std::mem::take(&mut self.active_buf);
        active.clear();
        active.extend(
            input_spikes
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s != 0.0)
                .map(|(i, &s)| (i, s)),
        );
        // Membrane is written for every neuron; spikes only where a neuron
        // fires, so the reused buffer must start zeroed.
        step.membrane.clear();
        step.membrane.resize(self.out_size, 0.0);
        step.spikes.clear();
        step.spikes.resize(self.out_size, 0.0);
        let membrane = &mut step.membrane;
        let spikes = &mut step.spikes;

        // Full clocked update of one output neuron: decay, integrate,
        // record membrane, threshold with subtraction reset + refractory.
        let neuron = |j: usize, v: &mut f32, refr: &mut u32, memb: &mut f32, spk: &mut f32| {
            *v *= leak;
            for &(i, s) in &active {
                *v += s * w[j * in_size + i];
            }
            *memb = *v;
            if *refr > 0 {
                *refr -= 1;
            } else if *v >= threshold {
                *spk = 1.0;
                *v -= threshold;
                *refr = refractory_steps;
            }
        };

        // Output neurons are independent; fan out over the neuron
        // dimension only when the synaptic work amortizes thread spawns.
        let work = self.out_size * (active.len() + 1);
        let threads = par::threads();
        if threads <= 1 || work < PAR_WORK_THRESHOLD {
            for (j, v) in self.v.iter_mut().enumerate() {
                neuron(
                    j,
                    v,
                    &mut self.refractory_left[j],
                    &mut membrane[j],
                    &mut spikes[j],
                );
            }
        } else {
            let ranges =
                par::chunk_ranges(self.out_size, par::chunk_count(self.out_size, 1, threads));
            let v_chunks = par::split_slices(&mut self.v, &ranges);
            let r_chunks = par::split_slices(&mut self.refractory_left, &ranges);
            let m_chunks = par::split_slices(membrane, &ranges);
            let s_chunks = par::split_slices(spikes, &ranges);
            let mut tasks: Vec<_> = ranges
                .iter()
                .zip(v_chunks)
                .zip(r_chunks)
                .zip(m_chunks)
                .zip(s_chunks)
                .map(|((((r, v), rf), m), s)| (r.start, v, rf, m, s))
                .collect();
            par::for_each_task(&mut tasks, |_, (start, v, rf, m, s)| {
                for k in 0..v.len() {
                    neuron(*start + k, &mut v[k], &mut rf[k], &mut m[k], &mut s[k]);
                }
            });
        }

        ops.record_mult(self.out_size as u64);
        ops.record_write(self.out_size as u64);
        ops.record_add(active.len() as u64 * self.out_size as u64);
        ops.record_compare(self.out_size as u64);
        if obs::enabled() {
            let fired = spikes.iter().filter(|&&s| s != 0.0).count() as u64;
            obs::counter_add("snn.layer.steps", 1);
            obs::counter_add("snn.layer.spikes", fired);
            obs::counter_add("snn.layer.membrane_updates", self.out_size as u64);
            obs::counter_add(
                "snn.layer.synaptic_adds",
                active.len() as u64 * self.out_size as u64,
            );
        }
        self.active_buf = active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_with_identity(n: usize, gain: f32) -> LifLayer {
        let mut rng = Rng64::seed_from_u64(0);
        let mut layer = LifLayer::new(n, n, LifConfig::new(), &mut rng);
        let w = layer.weight_mut().value.as_mut_slice();
        w.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..n {
            w[i * n + i] = gain;
        }
        layer
    }

    #[test]
    fn strong_input_spikes_immediately() {
        let mut layer = layer_with_identity(3, 2.0);
        let mut ops = OpCount::new();
        let out = layer.step(&[1.0, 0.0, 0.0], &mut ops);
        assert_eq!(out.spikes, vec![1.0, 0.0, 0.0]);
        assert!((out.membrane[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn weak_input_accumulates_over_steps() {
        let mut layer = layer_with_identity(1, 0.4);
        let mut ops = OpCount::new();
        let mut fired_at = None;
        for t in 0..20 {
            if layer.step(&[1.0], &mut ops).spikes[0] > 0.0 {
                fired_at = Some(t);
                break;
            }
        }
        let t = fired_at.expect("integrates to threshold");
        assert!(t >= 2, "fired at {t}");
    }

    #[test]
    fn op_counts_reflect_input_sparsity() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut layer = LifLayer::new(100, 50, LifConfig::new(), &mut rng);
        let mut ops_quiet = OpCount::new();
        layer.step(&vec![0.0; 100], &mut ops_quiet);
        assert_eq!(ops_quiet.adds, 0, "no spikes, no synaptic work");
        assert_eq!(ops_quiet.mults, 50, "decay is clocked regardless");
        let mut input = vec![0.0; 100];
        input[3] = 1.0;
        input[40] = 1.0;
        let mut ops_active = OpCount::new();
        layer.step(&input, &mut ops_active);
        assert_eq!(ops_active.adds, 2 * 50);
    }

    #[test]
    fn subtraction_reset_in_layer() {
        let mut layer = layer_with_identity(1, 1.7);
        let mut ops = OpCount::new();
        let out = layer.step(&[1.0], &mut ops);
        assert_eq!(out.spikes[0], 1.0);
        // Internal state after reset is 0.7; next quiet step decays it.
        let next = layer.step(&[0.0], &mut ops);
        assert!((next.membrane[0] - 0.63).abs() < 1e-5);
    }

    #[test]
    fn refractory_suppresses_repeated_layer_firing() {
        let mut rng = Rng64::seed_from_u64(9);
        let mut layer = LifLayer::new(
            1,
            1,
            LifConfig::new().with_refractory(2),
            &mut rng,
        );
        layer.weight_mut().value.as_mut_slice()[0] = 2.0;
        let mut ops = OpCount::new();
        assert_eq!(layer.step(&[1.0], &mut ops).spikes[0], 1.0);
        // The next two steps are refractory even under strong drive.
        assert_eq!(layer.step(&[1.0], &mut ops).spikes[0], 0.0);
        assert_eq!(layer.step(&[1.0], &mut ops).spikes[0], 0.0);
        assert_eq!(layer.step(&[1.0], &mut ops).spikes[0], 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut layer = layer_with_identity(2, 0.5);
        let mut ops = OpCount::new();
        layer.step(&[1.0, 1.0], &mut ops);
        layer.reset();
        let out = layer.step(&[0.0, 0.0], &mut ops);
        assert_eq!(out.membrane, vec![0.0, 0.0]);
    }
}
