//! Eligibility propagation (paper §III-A, [Bellec et al. 2020]).
//!
//! Surrogate-gradient BPTT is "an unrealistic algorithm for on-chip
//! learning due to the prohibitive amount of memory that would be required
//! to store the activity of all neurons over a potentially large number of
//! timesteps". E-prop replaces it with an *online* rule: each synapse keeps
//! a local eligibility trace, and a learning signal is broadcast to hidden
//! neurons through fixed random feedback weights ([Neftci et al. 2017],
//! event-driven random backpropagation). Memory is O(parameters), constant
//! in the sequence length — which is why processors like ReckOn [41] can
//! support it on chip.

use crate::encode::SpikeTrain;
use crate::neuron::LifConfig;
use crate::surrogate::Surrogate;
use evlab_tensor::init::he_normal;
use evlab_tensor::loss::softmax;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::Rng64;

/// A single-hidden-layer LIF classifier trained with e-prop.
///
/// # Examples
///
/// ```
/// use evlab_snn::eprop::EpropNetwork;
/// use evlab_snn::encode::SpikeTrain;
/// use evlab_tensor::OpCount;
/// use evlab_util::Rng64;
///
/// let mut rng = Rng64::seed_from_u64(0);
/// let mut net = EpropNetwork::new(8, 16, 2, &mut rng);
/// let train = SpikeTrain::new(8, 5);
/// let mut ops = OpCount::new();
/// let logits = net.infer(&train, &mut ops);
/// assert_eq!(logits.len(), 2);
/// ```
pub struct EpropNetwork {
    w_in: Tensor,    // [hidden, input]
    w_out: Tensor,   // [classes, hidden]
    feedback: Tensor, // [hidden, classes] — fixed random, never trained
    lif: LifConfig,
    surrogate: Surrogate,
    readout_leak: f32,
    input: usize,
    hidden: usize,
    classes: usize,
    /// Learning rate.
    pub lr: f32,
}

/// Per-sample training outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpropStep {
    /// Cross-entropy loss at the final step.
    pub loss: f32,
    /// Whether the prediction was correct.
    pub correct: bool,
    /// Peak memory words the rule needed beyond parameters — the on-chip
    /// feasibility number (O(hidden + input), NOT O(T × neurons)).
    pub trace_words: usize,
}

impl EpropNetwork {
    /// Creates a network with random weights and random fixed feedback.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero.
    pub fn new(input: usize, hidden: usize, classes: usize, rng: &mut Rng64) -> Self {
        assert!(input > 0 && hidden > 0 && classes > 0, "zero-sized network");
        let mut w_in = he_normal(&[hidden, input], input, rng);
        w_in.scale_assign(2.0);
        EpropNetwork {
            w_in,
            w_out: he_normal(&[classes, hidden], hidden, rng),
            feedback: he_normal(&[hidden, classes], classes, rng),
            lif: LifConfig::new(),
            surrogate: Surrogate::new(),
            readout_leak: 0.95,
            input,
            hidden,
            classes,
            lr: 0.01,
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w_in.len() + self.w_out.len()
    }

    /// Inference only: returns the final readout membranes (logits).
    pub fn infer(&mut self, train: &SpikeTrain, ops: &mut OpCount) -> Vec<f32> {
        self.run(train, None, ops).0
    }

    /// One *online* training sample: runs the clocked simulation while
    /// updating eligibility traces, applies the weight update at the end.
    ///
    /// # Panics
    ///
    /// Panics if the train size mismatches or `target >= classes`.
    pub fn train_sample(
        &mut self,
        train: &SpikeTrain,
        target: usize,
        ops: &mut OpCount,
    ) -> EpropStep {
        assert!(target < self.classes, "target out of range");
        let (logits, step) = self.run(train, Some(target), ops);
        let probs = softmax(&Tensor::from_vec(&[self.classes], logits.clone()).expect("shape"));
        let loss = -probs.as_slice()[target].max(1e-12).ln();
        let correct = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            == Some(target);
        EpropStep {
            loss,
            correct,
            trace_words: step,
        }
    }

    /// Shared simulation loop. With `target = Some(c)` the e-prop updates
    /// are applied online.
    fn run(
        &mut self,
        train: &SpikeTrain,
        target: Option<usize>,
        ops: &mut OpCount,
    ) -> (Vec<f32>, usize) {
        assert_eq!(train.size(), self.input, "input size mismatch");
        let steps = train.num_steps();
        let mut v = vec![0.0f32; self.hidden];
        let mut readout = vec![0.0f32; self.classes];
        // Online state: low-pass input traces and accumulated gradients.
        let mut epsilon = vec![0.0f32; self.input];
        let mut filtered_spikes = vec![0.0f32; self.hidden];
        let mut grad_in = vec![0.0f32; self.hidden * self.input];
        let mut grad_out = vec![0.0f32; self.classes * self.hidden];
        let w_in = self.w_in.as_slice().to_vec();
        let w_out = self.w_out.as_slice().to_vec();
        let fb = self.feedback.as_slice().to_vec();
        for t in 0..steps {
            let x = train.dense_step(t);
            // Input low-pass traces (the eligibility vector component).
            for (e, &xi) in epsilon.iter_mut().zip(&x) {
                *e = self.lif.leak * *e + xi;
            }
            ops.record_mult(self.input as u64);
            // Membrane update (event-driven accumulation).
            let mut active = 0u64;
            for (j, vj) in v.iter_mut().enumerate() {
                *vj *= self.lif.leak;
                for (i, &xi) in x.iter().enumerate() {
                    if xi != 0.0 {
                        *vj += xi * w_in[j * self.input + i];
                        active += 1;
                    }
                }
            }
            ops.record_mult(self.hidden as u64);
            ops.record_add(active);
            // Spikes + reset.
            let mut spikes = vec![0.0f32; self.hidden];
            for (j, vj) in v.iter_mut().enumerate() {
                if *vj >= self.lif.threshold {
                    spikes[j] = 1.0;
                    *vj -= self.lif.threshold;
                }
            }
            ops.record_compare(self.hidden as u64);
            // Readout integration.
            for (c, r) in readout.iter_mut().enumerate() {
                *r *= self.readout_leak;
                for (j, &s) in spikes.iter().enumerate() {
                    if s != 0.0 {
                        *r += s * w_out[c * self.hidden + j];
                    }
                }
            }
            for (f, &s) in filtered_spikes.iter_mut().zip(&spikes) {
                *f = self.readout_leak * *f + s;
            }
            if let Some(target) = target {
                // Per-step learning signal: broadcast error through the
                // fixed random feedback (e-prop 1 / DFA).
                let probs =
                    softmax(&Tensor::from_vec(&[self.classes], readout.clone()).expect("shape"));
                let err: Vec<f32> = probs
                    .as_slice()
                    .iter()
                    .enumerate()
                    .map(|(c, &p)| p - f32::from(u8::from(c == target)))
                    .collect();
                // Readout gradient: err ⊗ filtered spikes.
                for (c, &ec) in err.iter().enumerate() {
                    for (j, &fs) in filtered_spikes.iter().enumerate() {
                        grad_out[c * self.hidden + j] += ec * fs;
                    }
                }
                // Hidden: L_j = Σ_c B_jc err_c, eligibility = ψ_j ε_i.
                for j in 0..self.hidden {
                    let l_j: f32 = (0..self.classes)
                        .map(|c| fb[j * self.classes + c] * err[c])
                        .sum();
                    let psi = self.surrogate.grad(v[j] - self.lif.threshold);
                    let coeff = l_j * psi;
                    if coeff == 0.0 {
                        continue;
                    }
                    for (i, &ei) in epsilon.iter().enumerate() {
                        if ei != 0.0 {
                            grad_in[j * self.input + i] += coeff * ei;
                        }
                    }
                }
                ops.record_mac(
                    (self.hidden * (self.classes + self.input)) as u64,
                    (self.hidden * (self.classes + self.input)) as u64,
                );
            }
        }
        if target.is_some() {
            let scale = self.lr / steps.max(1) as f32;
            for (w, g) in self.w_in.as_mut_slice().iter_mut().zip(&grad_in) {
                *w -= scale * g;
            }
            for (w, g) in self.w_out.as_mut_slice().iter_mut().zip(&grad_out) {
                *w -= scale * g;
            }
            ops.record_write((self.w_in.len() + self.w_out.len()) as u64);
        }
        // Online memory: traces only — independent of sequence length.
        let trace_words = self.input + self.hidden + self.classes;
        (readout, trace_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_sample(class: usize, rng: &mut Rng64, input: usize, steps: usize) -> SpikeTrain {
        let mut train = SpikeTrain::new(input, steps);
        let half = input / 2;
        for t in 0..steps {
            for _ in 0..2 {
                let i = if class == 0 {
                    rng.next_index(half)
                } else {
                    half + rng.next_index(half)
                };
                train.push(t, i as u32);
            }
        }
        train
    }

    #[test]
    fn eprop_learns_without_backprop_through_time() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut net = EpropNetwork::new(16, 32, 2, &mut rng);
        net.lr = 0.02;
        let mut ops = OpCount::new();
        for epoch in 0..40 {
            let _ = epoch;
            for k in 0..40 {
                let class = k % 2;
                let train = toy_sample(class, &mut rng, 16, 12);
                net.train_sample(&train, class, &mut ops);
            }
        }
        let mut correct = 0;
        for k in 0..40 {
            let class = k % 2;
            let train = toy_sample(class, &mut rng, 16, 12);
            let logits = net.infer(&train, &mut ops);
            let pred = if logits[0] > logits[1] { 0 } else { 1 };
            if pred == class {
                correct += 1;
            }
        }
        assert!(correct >= 36, "e-prop accuracy {correct}/40");
    }

    #[test]
    fn memory_is_constant_in_sequence_length() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut net = EpropNetwork::new(8, 16, 2, &mut rng);
        let mut ops = OpCount::new();
        let short = net.train_sample(&toy_sample(0, &mut rng, 8, 5), 0, &mut ops);
        let long = net.train_sample(&toy_sample(0, &mut rng, 8, 500), 0, &mut ops);
        assert_eq!(
            short.trace_words, long.trace_words,
            "e-prop memory must not grow with T (BPTT would grow 100x here)"
        );
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut net = EpropNetwork::new(16, 24, 2, &mut rng);
        net.lr = 0.02;
        let mut ops = OpCount::new();
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..30 {
            let mut sum = 0.0;
            for k in 0..20 {
                let class = k % 2;
                let train = toy_sample(class, &mut rng, 16, 10);
                sum += net.train_sample(&train, class, &mut ops).loss;
            }
            if epoch == 0 {
                first = sum;
            }
            last = sum;
        }
        assert!(last < 0.7 * first, "loss {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn bad_target_panics() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut net = EpropNetwork::new(4, 8, 2, &mut rng);
        let train = SpikeTrain::new(4, 3);
        net.train_sample(&train, 5, &mut OpCount::new());
    }
}
