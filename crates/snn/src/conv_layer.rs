//! Convolutional LIF layers and the convolutional spiking classifier.
//!
//! Event-vision SNNs are convolutional in practice (e.g. the converted
//! Spiking-YOLO of §III-A [35]): weight sharing over the pixel grid with
//! LIF dynamics per feature-map site. This module provides a `ConvLifLayer`
//! (same-padded 3×3-style convolution feeding leaky integrate-and-fire
//! units) and [`ConvSnnNetwork`], a conv → LIF → pool → readout classifier
//! trained with surrogate-gradient BPTT.

use crate::neuron::LifConfig;
use crate::surrogate::Surrogate;
use evlab_tensor::init::he_normal;
use evlab_tensor::layer::Param;
use evlab_tensor::loss::cross_entropy;
use evlab_tensor::optim::Optimizer;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::Rng64;

/// A convolutional layer of LIF neurons over `[C, H, W]` spike maps.
pub struct ConvLifLayer {
    weight: Param, // [O, C, K, K]
    config: LifConfig,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    height: usize,
    width: usize,
    v: Tensor, // [O, H, W]
}

impl ConvLifLayer {
    /// Creates a same-padded convolutional LIF layer for `(width, height)`
    /// maps.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero or the kernel is even.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        resolution: (usize, usize),
        config: LifConfig,
        rng: &mut Rng64,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0, "zero-sized layer");
        assert!(kernel % 2 == 1, "kernel must be odd for same padding");
        let mut weight = he_normal(
            &[out_channels, in_channels, kernel, kernel],
            in_channels * kernel * kernel,
            rng,
        );
        weight.scale_assign(3.0);
        ConvLifLayer {
            weight: Param::new(weight),
            config,
            in_channels,
            out_channels,
            kernel,
            width: resolution.0,
            height: resolution.1,
            v: Tensor::zeros(&[out_channels, resolution.1, resolution.0]),
        }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The weight parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Resets membranes to rest.
    pub fn reset(&mut self) {
        self.v.fill_zero();
    }

    /// Same-padded spike convolution: accumulates `W * spikes` into the
    /// membranes (event-driven: only non-zero input sites are visited),
    /// applies leak, thresholds, subtract-resets. Returns
    /// `(pre-reset membranes, spikes)`.
    pub fn step(&mut self, input: &Tensor, ops: &mut OpCount) -> (Tensor, Tensor) {
        assert_eq!(
            input.shape(),
            &[self.in_channels, self.height, self.width],
            "conv-lif input shape mismatch"
        );
        let k = self.kernel;
        let half = (k / 2) as isize;
        // Clocked leak.
        self.v.scale_assign(self.config.leak);
        ops.record_mult(self.v.len() as u64);
        // Event-driven scatter: each input spike adds a weighted kernel
        // footprint to every output channel.
        let x = input.as_slice();
        let w = self.weight.value.as_slice();
        let mut active = 0u64;
        {
            let vs = self.v.as_mut_slice();
            for c in 0..self.in_channels {
                for y in 0..self.height {
                    for xx in 0..self.width {
                        let s = x[(c * self.height + y) * self.width + xx];
                        if s == 0.0 {
                            continue;
                        }
                        active += 1;
                        for o in 0..self.out_channels {
                            for ky in 0..k {
                                let oy = y as isize + half - ky as isize;
                                if oy < 0 || oy >= self.height as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ox = xx as isize + half - kx as isize;
                                    if ox < 0 || ox >= self.width as isize {
                                        continue;
                                    }
                                    vs[(o * self.height + oy as usize) * self.width
                                        + ox as usize] += s
                                        * w[((o * self.in_channels + c) * k + ky) * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        ops.record_add(active * (self.out_channels * k * k) as u64);
        // Threshold + subtract reset.
        let membrane = self.v.clone();
        let mut spikes = Tensor::zeros(self.v.shape());
        {
            let vs = self.v.as_mut_slice();
            let ss = spikes.as_mut_slice();
            for (j, v) in vs.iter_mut().enumerate() {
                if *v >= self.config.threshold {
                    ss[j] = 1.0;
                    *v -= self.config.threshold;
                }
            }
        }
        ops.record_compare(self.v.len() as u64);
        (membrane, spikes)
    }
}

/// A one-conv-layer spiking classifier: conv-LIF → 2× sum-pool →
/// leaky linear readout, trained with BPTT.
pub struct ConvSnnNetwork {
    conv: ConvLifLayer,
    readout: Param, // [classes, pooled]
    readout_leak: f32,
    surrogate: Surrogate,
    classes: usize,
    pool: usize,
    pooled_h: usize,
    pooled_w: usize,
    // BPTT caches.
    cache_membranes: Vec<Tensor>,
    cache_spikes: Vec<Tensor>,
    cache_inputs: Vec<Tensor>,
}

impl ConvSnnNetwork {
    /// Creates the network for `(width, height)` two-channel spike maps.
    ///
    /// # Panics
    ///
    /// Panics if the resolution is not divisible by `pool`.
    pub fn new(
        resolution: (usize, usize),
        out_channels: usize,
        pool: usize,
        classes: usize,
        rng: &mut Rng64,
    ) -> Self {
        assert!(
            resolution.0.is_multiple_of(pool) && resolution.1.is_multiple_of(pool),
            "resolution must divide by the pool size"
        );
        let conv = ConvLifLayer::new(
            2,
            out_channels,
            3,
            resolution,
            LifConfig::new(),
            rng,
        );
        let pooled_w = resolution.0 / pool;
        let pooled_h = resolution.1 / pool;
        let pooled = out_channels * pooled_h * pooled_w;
        ConvSnnNetwork {
            conv,
            readout: Param::new(he_normal(&[classes, pooled], pooled, rng)),
            readout_leak: 0.95,
            surrogate: Surrogate::new(),
            classes,
            pool,
            pooled_h,
            pooled_w,
            cache_membranes: Vec::new(),
            cache_spikes: Vec::new(),
            cache_inputs: Vec::new(),
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.conv.weight.len() + self.readout.len()
    }

    fn pool_spikes(&self, spikes: &Tensor) -> Vec<f32> {
        let o = self.conv.out_channels;
        let (h, w) = (self.conv.height, self.conv.width);
        let s = spikes.as_slice();
        let mut out = vec![0.0f32; o * self.pooled_h * self.pooled_w];
        for c in 0..o {
            for y in 0..h {
                for x in 0..w {
                    out[(c * self.pooled_h + y / self.pool) * self.pooled_w + x / self.pool] +=
                        s[(c * h + y) * w + x];
                }
            }
        }
        out
    }

    /// Runs the clocked simulation over per-step `[2, H, W]` spike maps and
    /// returns the logits (final readout membranes). Caches for
    /// [`ConvSnnNetwork::backward`].
    pub fn forward(&mut self, steps: &[Tensor], ops: &mut OpCount) -> Tensor {
        assert!(!steps.is_empty(), "empty sequence");
        self.conv.reset();
        self.cache_membranes.clear();
        self.cache_spikes.clear();
        self.cache_inputs.clear();
        let mut readout_v = vec![0.0f32; self.classes];
        let rw = self.readout.value.as_slice();
        let pooled_len = self.readout.value.shape()[1];
        for input in steps {
            let (membrane, spikes) = self.conv.step(input, ops);
            let pooled = self.pool_spikes(&spikes);
            for v in &mut readout_v {
                *v *= self.readout_leak;
            }
            let mut active = 0u64;
            for (i, &p) in pooled.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                active += 1;
                for (c, v) in readout_v.iter_mut().enumerate() {
                    *v += p * rw[c * pooled_len + i];
                }
            }
            ops.record_add(active * self.classes as u64);
            ops.record_mult(self.classes as u64);
            self.cache_membranes.push(membrane);
            self.cache_spikes.push(spikes);
            self.cache_inputs.push(input.clone());
        }
        Tensor::from_vec(&[self.classes], readout_v).expect("logit shape")
    }

    /// BPTT backward from a logit gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before [`ConvSnnNetwork::forward`].
    pub fn backward(&mut self, grad_logits: &Tensor, ops: &mut OpCount) {
        let steps = self.cache_inputs.len();
        assert!(steps > 0, "backward without forward");
        let g = grad_logits.as_slice();
        let pooled_len = self.readout.value.shape()[1];
        let rw = self.readout.value.as_slice().to_vec();
        let theta = self.conv.config.threshold;
        let leak = self.conv.config.leak;
        let o = self.conv.out_channels;
        let (h, w) = (self.conv.height, self.conv.width);
        let k = self.conv.kernel;
        let half = (k / 2) as isize;

        // Readout gradients and per-step pooled-spike gradients.
        let pooled_per_step: Vec<Vec<f32>> = (0..steps)
            .map(|t| self.pool_spikes(&self.cache_spikes[t]))
            .collect();
        let mut ds_pooled: Vec<Vec<f32>> = vec![vec![0.0; pooled_len]; steps];
        {
            let rg = self.readout.grad.as_mut_slice();
            let mut scale = 1.0f32;
            for t in (0..steps).rev() {
                let pooled = &pooled_per_step[t];
                for c in 0..self.classes {
                    let gc = g[c] * scale;
                    if gc == 0.0 {
                        continue;
                    }
                    for i in 0..pooled_len {
                        rg[c * pooled_len + i] += gc * pooled[i];
                        ds_pooled[t][i] += gc * rw[c * pooled_len + i];
                    }
                }
                scale *= self.readout_leak;
            }
        }
        // Through the pool (sum pooling broadcasts the gradient) and BPTT
        // through the conv LIF dynamics.
        let mut delta_next = Tensor::zeros(&[o, h, w]);
        for t in (0..steps).rev() {
            let membrane = &self.cache_membranes[t];
            let input = &self.cache_inputs[t];
            let mut delta = Tensor::zeros(&[o, h, w]);
            {
                let dm = delta.as_mut_slice();
                let mv = membrane.as_slice();
                let dn = delta_next.as_slice();
                for c in 0..o {
                    for y in 0..h {
                        for x in 0..w {
                            let idx = (c * h + y) * w + x;
                            let ds = ds_pooled[t][(c * self.pooled_h + y / self.pool)
                                * self.pooled_w
                                + x / self.pool];
                            let sg = self.surrogate.grad(mv[idx] - theta);
                            dm[idx] = sg * ds + leak * dn[idx];
                        }
                    }
                }
            }
            // Weight gradients: correlation of delta with the input spikes.
            {
                let gw = self.conv.weight.grad.as_mut_slice();
                let xs = input.as_slice();
                let dm = delta.as_slice();
                for c in 0..self.conv.in_channels {
                    for y in 0..h {
                        for xx in 0..w {
                            let s = xs[(c * h + y) * w + xx];
                            if s == 0.0 {
                                continue;
                            }
                            for oc in 0..o {
                                for ky in 0..k {
                                    let oy = y as isize + half - ky as isize;
                                    if oy < 0 || oy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..k {
                                        let ox = xx as isize + half - kx as isize;
                                        if ox < 0 || ox >= w as isize {
                                            continue;
                                        }
                                        gw[((oc * self.conv.in_channels + c) * k + ky) * k
                                            + kx] += s
                                            * dm[(oc * h + oy as usize) * w + ox as usize];
                                    }
                                }
                            }
                        }
                    }
                }
            }
            delta_next = delta;
        }
        ops.record_mac(
            (steps * o * h * w * self.conv.in_channels * k * k) as u64,
            (steps * o * h * w * self.conv.in_channels * k * k) as u64,
        );
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.conv.weight, &mut self.readout]
    }

    /// Predicted class for a step sequence.
    pub fn predict(&mut self, steps: &[Tensor], ops: &mut OpCount) -> usize {
        self.forward(steps, ops).argmax()
    }

    /// One gradient-accumulating training sample; returns the loss.
    pub fn accumulate(&mut self, steps: &[Tensor], label: usize, ops: &mut OpCount) -> f32 {
        let logits = self.forward(steps, ops);
        let (loss, grad) = cross_entropy(&logits, label);
        self.backward(&grad, ops);
        loss
    }

    /// Applies an optimizer step.
    pub fn step_optimizer(&mut self, optimizer: &mut dyn Optimizer) {
        let mut params = self.params_mut();
        optimizer.step(&mut params);
    }
}

/// Converts a [`crate::encode::SpikeTrain`] over a `(width, height)`
/// two-polarity grid into per-step `[2, H, W]` tensors for the
/// convolutional network.
///
/// # Panics
///
/// Panics if the train size is not `2 * width * height`.
pub fn spike_train_to_maps(
    train: &crate::encode::SpikeTrain,
    resolution: (usize, usize),
) -> Vec<Tensor> {
    let (w, h) = resolution;
    assert_eq!(train.size(), 2 * w * h, "train size mismatch");
    (0..train.num_steps())
        .map(|t| {
            let mut map = Tensor::zeros(&[2, h, w]);
            let data = map.as_mut_slice();
            for &i in train.at(t) {
                data[i as usize] += 1.0;
            }
            map
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_tensor::optim::Adam;

    /// Toy task: is the activity in the left or right half of the map?
    fn toy_steps(class: usize, rng: &mut Rng64, size: usize, steps: usize) -> Vec<Tensor> {
        (0..steps)
            .map(|_| {
                let mut map = Tensor::zeros(&[2, size, size]);
                for _ in 0..3 {
                    let x = if class == 0 {
                        rng.next_index(size / 2)
                    } else {
                        size / 2 + rng.next_index(size / 2)
                    };
                    let y = rng.next_index(size);
                    let c = rng.next_index(2);
                    map.set(&[c, y, x], 1.0);
                }
                map
            })
            .collect()
    }

    #[test]
    fn conv_lif_fires_locally() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut layer =
            ConvLifLayer::new(2, 4, 3, (8, 8), LifConfig::new(), &mut rng);
        let mut input = Tensor::zeros(&[2, 8, 8]);
        input.set(&[0, 4, 4], 1.0);
        let mut ops = OpCount::new();
        let (membrane, _) = layer.step(&input, &mut ops);
        // Membrane response confined to the 3x3 neighbourhood of (4,4).
        for y in 0..8 {
            for x in 0..8 {
                let m: f32 = (0..4).map(|o| membrane.at(&[o, y, x]).abs()).sum();
                let near =
                    (y as i32 - 4).abs() <= 1 && (x as i32 - 4).abs() <= 1;
                if near {
                    continue;
                }
                assert_eq!(m, 0.0, "leak at ({x},{y})");
            }
        }
        assert_eq!(ops.adds, 4 * 9, "one spike fans out O*K^2 adds");
    }

    #[test]
    fn conv_snn_learns_spatial_toy_task() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut net = ConvSnnNetwork::new((8, 8), 4, 2, 2, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut ops = OpCount::new();
        for _ in 0..30 {
            for k in 0..12 {
                let class = k % 2;
                let steps = toy_steps(class, &mut rng, 8, 6);
                net.accumulate(&steps, class, &mut ops);
            }
            net.step_optimizer(&mut opt);
        }
        let mut correct = 0;
        for k in 0..20 {
            let class = k % 2;
            let steps = toy_steps(class, &mut rng, 8, 6);
            if net.predict(&steps, &mut ops) == class {
                correct += 1;
            }
        }
        assert!(correct >= 17, "conv-SNN accuracy {correct}/20");
    }

    #[test]
    fn weight_sharing_keeps_params_small() {
        let mut rng = Rng64::seed_from_u64(3);
        let net = ConvSnnNetwork::new((16, 16), 8, 2, 4, &mut rng);
        // conv: 8*2*9 = 144; readout: 4 * 8*8*8 = 2048.
        assert_eq!(net.param_count(), 144 + 4 * 8 * 64);
        // A dense LIF layer over the same input would need 2*256*hidden
        // weights — orders more.
        assert!(net.param_count() < 2 * 256 * 64 / 4);
    }

    #[test]
    fn spike_train_conversion_round_trip() {
        let mut train = crate::encode::SpikeTrain::new(2 * 4 * 4, 3);
        train.push(0, 0); // channel 0, (0,0)
        train.push(2, 16 + 5); // channel 1, (1,1)
        let maps = spike_train_to_maps(&train, (4, 4));
        assert_eq!(maps.len(), 3);
        assert_eq!(maps[0].at(&[0, 0, 0]), 1.0);
        assert_eq!(maps[2].at(&[1, 1, 1]), 1.0);
        assert_eq!(maps[1].sum(), 0.0);
    }
}
