//! The spiking neural network paradigm (paper §III-A).
//!
//! SNNs compute in an event-driven fashion "naturally compatible with the
//! raw data" of event cameras. This crate implements the full §III-A stack:
//!
//! * [`neuron`] — the Leaky-Integrate-and-Fire neuron ("the model of choice
//!   for most SNNs"), with subtraction reset and refractory period.
//! * [`encode`] — event streams → spike trains (time binning) and the
//!   rate/TTFS encodings used by ANN conversion.
//! * [`layer`] / [`network`] — fully-connected LIF layers simulated with a
//!   clocked timestep (how digital neuromorphic processors actually run,
//!   §III-A) and a leaky-integrator readout.
//! * [`surrogate`] — the surrogate-gradient functions of [Neftci et al.
//!   2019] (fast sigmoid, triangle, arctan) and BPTT training with a
//!   membrane-potential loss.
//! * [`event_driven`] — the alternative *fully event-driven* simulation
//!   ([Stuijt et al. µBrain]) with decay-on-demand, exposing the memory
//!   traffic trade-off of [42]/[44].
//! * [`convert`] — ANN→SNN conversion with threshold balancing and the
//!   rate-approximation ("unevenness") error measurement of §III-A.
//! * [`stdp`] — unsupervised spike-timing-dependent plasticity
//!   ([Diehl & Cook 2015]), the backpropagation-free local learning rule.
//!
//! # Examples
//!
//! ```
//! use evlab_snn::neuron::{LifConfig, LifNeuron};
//!
//! let mut n = LifNeuron::new(&LifConfig::new());
//! let mut spikes = 0;
//! for _ in 0..100 {
//!     if n.step(0.3).fired() {
//!         spikes += 1;
//!     }
//! }
//! assert!(spikes > 0);
//! ```

pub mod conv_layer;
pub mod convert;
pub mod encode;
pub mod eprop;
pub mod event_driven;
pub mod layer;
pub mod network;
pub mod neuron;
pub mod stdp;
pub mod surrogate;

pub use network::SnnNetwork;
pub use neuron::{LifConfig, LifNeuron};
pub use surrogate::Surrogate;
