//! Multi-layer spiking network with surrogate-gradient BPTT.
//!
//! The architecture is the standard §III-A stack: hidden LIF layers
//! followed by a non-spiking leaky-integrator readout whose final membrane
//! potentials are the class logits (a "loss based on the membrane
//! potential", [Neftci et al. 2019]). Training backpropagates through time
//! with the spiking derivative replaced by a [`Surrogate`], and the reset
//! path detached (the usual approximation).

use crate::encode::SpikeTrain;
use crate::layer::LifLayer;
use crate::neuron::LifConfig;
use crate::surrogate::Surrogate;
use evlab_tensor::init::he_normal;
use evlab_tensor::layer::Param;
use evlab_tensor::loss::cross_entropy;
use evlab_tensor::optim::Optimizer;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::Rng64;

/// Network hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SnnConfig {
    /// Input dimensionality (2 × pixels for polarity-channel spike input).
    pub input: usize,
    /// Hidden layer sizes.
    pub hidden: Vec<usize>,
    /// Output classes.
    pub classes: usize,
    /// LIF parameters shared by the hidden layers.
    pub lif: LifConfig,
    /// Leak of the non-spiking readout integrator.
    pub readout_leak: f32,
    /// Surrogate gradient used during training.
    pub surrogate: Surrogate,
}

impl SnnConfig {
    /// A small default: one hidden layer of 64 neurons.
    pub fn new(input: usize, classes: usize) -> Self {
        SnnConfig {
            input,
            hidden: vec![64],
            classes,
            lif: LifConfig::new(),
            readout_leak: 0.95,
            surrogate: Surrogate::new(),
        }
    }

    /// Returns a copy with different hidden sizes.
    pub fn with_hidden(mut self, hidden: Vec<usize>) -> Self {
        self.hidden = hidden;
        self
    }
}

#[derive(Debug, Clone, Default)]
struct ForwardCache {
    /// Per layer, per step: pre-reset membranes.
    membranes: Vec<Vec<Vec<f32>>>,
    /// Per layer, per step: emitted spikes.
    spikes: Vec<Vec<Vec<f32>>>,
    /// Per step: dense input vector.
    inputs: Vec<Vec<f32>>,
}

/// A spiking classifier network.
pub struct SnnNetwork {
    config: SnnConfig,
    layers: Vec<LifLayer>,
    readout: Param, // [classes, last_hidden]
    cache: ForwardCache,
    last_spike_counts: Vec<usize>,
}

impl SnnNetwork {
    /// Creates a network from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is empty.
    pub fn new(config: SnnConfig, rng: &mut Rng64) -> Self {
        assert!(!config.hidden.is_empty(), "need at least one hidden layer");
        let mut layers = Vec::new();
        let mut in_size = config.input;
        for &h in &config.hidden {
            layers.push(LifLayer::new(in_size, h, config.lif, rng));
            in_size = h;
        }
        let readout = Param::new(he_normal(&[config.classes, in_size], in_size, rng));
        SnnNetwork {
            config,
            layers,
            readout,
            cache: ForwardCache::default(),
            last_spike_counts: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SnnConfig {
        &self.config
    }

    /// The hidden layers, in order.
    pub fn layers(&self) -> &[LifLayer] {
        &self.layers
    }

    /// The readout weight matrix `[classes, last_hidden]`.
    pub fn readout_weight(&self) -> &Tensor {
        &self.readout.value
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weight().len())
            .sum::<usize>()
            + self.readout.len()
    }

    /// Neuron state words (one membrane per neuron) — the state memory a
    /// neuromorphic core must hold.
    pub fn state_count(&self) -> usize {
        self.layers.iter().map(|l| l.out_size()).sum::<usize>() + self.config.classes
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = self
            .layers
            .iter_mut()
            .map(|l| l.weight_mut())
            .collect();
        out.push(&mut self.readout);
        out
    }

    /// Per-hidden-layer spike totals of the most recent forward pass — the
    /// activity measure behind the "Computation sparsity" row.
    pub fn last_spike_counts(&self) -> &[usize] {
        &self.last_spike_counts
    }

    /// Runs the clocked simulation over a spike train, returning the class
    /// logits (readout membranes at the final step). Caches everything
    /// needed for [`SnnNetwork::backward`].
    ///
    /// # Panics
    ///
    /// Panics if the train size mismatches the configured input.
    pub fn forward(&mut self, train: &SpikeTrain, ops: &mut OpCount) -> Tensor {
        assert_eq!(train.size(), self.config.input, "input size mismatch");
        let steps = train.num_steps();
        for l in &mut self.layers {
            l.reset();
        }
        self.cache = ForwardCache {
            membranes: vec![Vec::with_capacity(steps); self.layers.len()],
            spikes: vec![Vec::with_capacity(steps); self.layers.len()],
            inputs: Vec::with_capacity(steps),
        };
        self.last_spike_counts = vec![0; self.layers.len()];
        let mut readout_v = vec![0.0f32; self.config.classes];
        let rw = self.readout.value.as_slice();
        let last_hidden = self.layers.last().expect("nonempty").out_size();
        for t in 0..steps {
            let mut current = train.dense_step(t);
            self.cache.inputs.push(current.clone());
            for (li, layer) in self.layers.iter_mut().enumerate() {
                let step = layer.step(&current, ops);
                self.last_spike_counts[li] +=
                    step.spikes.iter().filter(|&&s| s > 0.0).count();
                self.cache.membranes[li].push(step.membrane);
                current = step.spikes.clone();
                self.cache.spikes[li].push(step.spikes);
            }
            // Non-spiking readout integrator (clocked decay + event-driven
            // accumulation of last hidden spikes).
            for v in &mut readout_v {
                *v *= self.config.readout_leak;
            }
            ops.record_mult(self.config.classes as u64);
            let mut active = 0u64;
            for (i, &s) in current.iter().enumerate() {
                if s == 0.0 {
                    continue;
                }
                active += 1;
                for (c, v) in readout_v.iter_mut().enumerate() {
                    *v += s * rw[c * last_hidden + i];
                }
            }
            ops.record_add(active * self.config.classes as u64);
        }
        Tensor::from_vec(&[self.config.classes], readout_v).expect("logit shape")
    }

    /// Backpropagates through time from a logit gradient, accumulating
    /// parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before [`SnnNetwork::forward`].
    pub fn backward(&mut self, grad_logits: &Tensor, ops: &mut OpCount) {
        let steps = self.cache.inputs.len();
        assert!(steps > 0, "backward without forward");
        let g = grad_logits.as_slice();
        let classes = self.config.classes;
        let last_hidden = self.layers.last().expect("nonempty").out_size();
        let rw = self.readout.value.as_slice().to_vec();
        let theta = self.config.lif.threshold;
        let surrogate = self.config.surrogate;

        // Readout: r_T = sum_t leak^(T-1-t) V s_t  =>
        //   dV = sum_t leak^(T-1-t) g s_t^T,  ds_t = leak^(T-1-t) V^T g.
        let mut ds_last: Vec<Vec<f32>> = vec![vec![0.0; last_hidden]; steps];
        {
            let rg = self.readout.grad.as_mut_slice();
            let mut scale = 1.0f32;
            for t in (0..steps).rev() {
                let s_t = &self.cache.spikes[self.layers.len() - 1][t];
                for c in 0..classes {
                    let gc = g[c] * scale;
                    if gc == 0.0 {
                        continue;
                    }
                    for i in 0..last_hidden {
                        rg[c * last_hidden + i] += gc * s_t[i];
                        ds_last[t][i] += gc * rw[c * last_hidden + i];
                    }
                }
                scale *= self.config.readout_leak;
            }
            ops.record_mac(
                (steps * classes * last_hidden * 2) as u64,
                (steps * classes * last_hidden * 2) as u64,
            );
        }

        // Hidden layers, top to bottom.
        let mut ds_out = ds_last;
        for li in (0..self.layers.len()).rev() {
            let in_size = self.layers[li].in_size();
            let out_size = self.layers[li].out_size();
            let leak = self.layers[li].config().leak;
            let w = self.layers[li].weight().value.as_slice().to_vec();
            let mut ds_in: Vec<Vec<f32>> = vec![vec![0.0; in_size]; steps];
            {
                let wg = self.layers[li].weight_mut().grad.as_mut_slice();
                let mut delta_next = vec![0.0f32; out_size];
                for t in (0..steps).rev() {
                    let membrane = &self.cache.membranes[li][t];
                    let input: &[f32] = if li == 0 {
                        &self.cache.inputs[t]
                    } else {
                        &self.cache.spikes[li - 1][t]
                    };
                    let mut delta = vec![0.0f32; out_size];
                    for j in 0..out_size {
                        let sg = surrogate.grad(membrane[j] - theta);
                        delta[j] = sg * ds_out[t][j] + leak * delta_next[j];
                    }
                    for (j, &dj) in delta.iter().enumerate() {
                        if dj == 0.0 {
                            continue;
                        }
                        for (i, &xi) in input.iter().enumerate() {
                            if xi != 0.0 {
                                wg[j * in_size + i] += dj * xi;
                            }
                            ds_in[t][i] += dj * w[j * in_size + i];
                        }
                    }
                    delta_next = delta;
                }
            }
            ops.record_mac(
                (steps * out_size * in_size * 2) as u64,
                (steps * out_size * in_size * 2) as u64,
            );
            ds_out = ds_in;
        }
    }

    /// Predicted class for a spike train.
    pub fn predict(&mut self, train: &SpikeTrain, ops: &mut OpCount) -> usize {
        self.forward(train, ops).argmax()
    }
}

impl std::fmt::Debug for SnnNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnnNetwork")
            .field("input", &self.config.input)
            .field("hidden", &self.config.hidden)
            .field("classes", &self.config.classes)
            .field("params", &self.param_count())
            .finish()
    }
}

/// Trains on a batch of `(spike_train, label)` pairs with one optimizer
/// step; returns `(mean_loss, accuracy)`.
pub fn train_batch(
    net: &mut SnnNetwork,
    batch: &[(SpikeTrain, usize)],
    optimizer: &mut dyn Optimizer,
    ops: &mut OpCount,
) -> (f32, f32) {
    assert!(!batch.is_empty(), "empty batch");
    let mut loss_sum = 0.0;
    let mut correct = 0usize;
    for (train, label) in batch {
        let logits = net.forward(train, ops);
        if logits.argmax() == *label {
            correct += 1;
        }
        let (loss, grad) = cross_entropy(&logits, *label);
        loss_sum += loss;
        net.backward(&grad, ops);
    }
    let scale = 1.0 / batch.len() as f32;
    let mut params = net.params_mut();
    for p in params.iter_mut() {
        p.grad.scale_assign(scale);
    }
    optimizer.step(&mut params);
    (loss_sum * scale, correct as f32 * scale)
}

/// Classification accuracy over a set of spike trains.
pub fn evaluate(
    net: &mut SnnNetwork,
    samples: &[(SpikeTrain, usize)],
    ops: &mut OpCount,
) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|(train, label)| net.predict(train, ops) == *label)
        .count();
    correct as f32 / samples.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_tensor::optim::Adam;

    /// Toy task: class = which half of the inputs carries the spikes.
    fn toy_sample(class: usize, rng: &mut Rng64, input: usize, steps: usize) -> SpikeTrain {
        let mut train = SpikeTrain::new(input, steps);
        let half = input / 2;
        for t in 0..steps {
            for _ in 0..2 {
                let i = if class == 0 {
                    rng.next_index(half)
                } else {
                    half + rng.next_index(half)
                };
                train.push(t, i as u32);
            }
        }
        train
    }

    #[test]
    fn snn_learns_spatial_toy_task() {
        let mut rng = Rng64::seed_from_u64(1);
        let config = SnnConfig::new(16, 2).with_hidden(vec![24]);
        let mut net = SnnNetwork::new(config, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut ops = OpCount::new();
        let train_set: Vec<(SpikeTrain, usize)> = (0..60)
            .map(|i| {
                let class = i % 2;
                (toy_sample(class, &mut rng, 16, 10), class)
            })
            .collect();
        let test_set: Vec<(SpikeTrain, usize)> = (0..20)
            .map(|i| {
                let class = i % 2;
                (toy_sample(class, &mut rng, 16, 10), class)
            })
            .collect();
        for _ in 0..15 {
            for chunk in train_set.chunks(10) {
                train_batch(&mut net, chunk, &mut opt, &mut ops);
            }
        }
        let acc = evaluate(&mut net, &test_set, &mut ops);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn temporal_order_task_is_learnable() {
        // Two classes with identical total spike counts per input; only the
        // order differs: class 0 fires input 0 early then input 1; class 1
        // the reverse. A leaky readout sees different final membranes.
        let make = |class: usize| {
            let mut t = SpikeTrain::new(2, 8);
            let (early, late) = if class == 0 { (0u32, 1u32) } else { (1, 0) };
            for step in 0..4 {
                t.push(step, early);
            }
            for step in 4..8 {
                t.push(step, late);
            }
            t
        };
        let mut rng = Rng64::seed_from_u64(2);
        let config = SnnConfig::new(2, 2).with_hidden(vec![12]);
        let mut net = SnnNetwork::new(config, &mut rng);
        let mut opt = Adam::new(0.02);
        let mut ops = OpCount::new();
        let batch = vec![(make(0), 0), (make(1), 1)];
        for _ in 0..150 {
            train_batch(&mut net, &batch, &mut opt, &mut ops);
        }
        assert_eq!(net.predict(&make(0), &mut ops), 0);
        assert_eq!(net.predict(&make(1), &mut ops), 1);
    }

    #[test]
    fn op_profile_is_add_dominated() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut net = SnnNetwork::new(SnnConfig::new(32, 4), &mut rng);
        let mut train = SpikeTrain::new(32, 20);
        for t in 0..20 {
            train.push(t, (t % 32) as u32);
        }
        let mut ops = OpCount::new();
        net.forward(&train, &mut ops);
        assert_eq!(ops.macs, 0, "inference uses no MACs");
        assert!(ops.adds > ops.mults, "adds {} vs mults {}", ops.adds, ops.mults);
    }

    #[test]
    fn spike_counts_are_tracked() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut net = SnnNetwork::new(SnnConfig::new(8, 2), &mut rng);
        let mut busy = SpikeTrain::new(8, 10);
        for t in 0..10 {
            for i in 0..8 {
                busy.push(t, i);
            }
        }
        let mut ops = OpCount::new();
        net.forward(&busy, &mut ops);
        let busy_count = net.last_spike_counts()[0];
        let quiet = SpikeTrain::new(8, 10);
        net.forward(&quiet, &mut ops);
        assert_eq!(net.last_spike_counts()[0], 0);
        assert!(busy_count > 0);
    }

    #[test]
    fn param_and_state_counts() {
        let mut rng = Rng64::seed_from_u64(5);
        let net = SnnNetwork::new(
            SnnConfig::new(10, 3).with_hidden(vec![7, 5]),
            &mut rng,
        );
        assert_eq!(net.param_count(), 10 * 7 + 7 * 5 + 5 * 3);
        assert_eq!(net.state_count(), 7 + 5 + 3);
    }
}
