//! Spike-timing-dependent plasticity (paper §III-A, [Diehl & Cook 2015]).
//!
//! The backpropagation-free, local, bio-inspired learning rule: synapses
//! from inputs that fired shortly *before* an output spike are potentiated;
//! all others are depressed. Combined with winner-take-all lateral
//! inhibition, neurons self-organize into detectors for repeated input
//! patterns — the kind of on-chip learning §V argues SNN hardware is
//! uniquely suited for.

use crate::neuron::LifConfig;
use evlab_tensor::OpCount;
use evlab_util::Rng64;

/// STDP learning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StdpConfig {
    /// Potentiation rate for recently-active presynaptic inputs.
    pub lr_plus: f32,
    /// Depression rate for inactive inputs at an output spike.
    pub lr_minus: f32,
    /// Presynaptic trace decay per step.
    pub trace_decay: f32,
    /// Maximum weight.
    pub w_max: f32,
    /// Homeostatic threshold boost added to a neuron on each win; makes
    /// frequent winners harder to excite so other neurons can specialize
    /// (the adaptive-threshold mechanism of [Diehl & Cook 2015]).
    pub homeostasis: f32,
    /// Per-step decay of the homeostatic boost back toward the base
    /// threshold.
    pub homeostasis_decay: f32,
}

impl StdpConfig {
    /// Standard parameters.
    pub fn new() -> Self {
        StdpConfig {
            lr_plus: 0.04,
            lr_minus: 0.015,
            trace_decay: 0.8,
            w_max: 1.0,
            homeostasis: 0.3,
            homeostasis_decay: 0.995,
        }
    }
}

impl Default for StdpConfig {
    fn default() -> Self {
        StdpConfig::new()
    }
}

/// A competitive STDP layer with winner-take-all inhibition.
#[derive(Debug, Clone)]
pub struct StdpLayer {
    weights: Vec<f32>, // [out, in]
    in_size: usize,
    out_size: usize,
    lif: LifConfig,
    stdp: StdpConfig,
    v: Vec<f32>,
    pre_trace: Vec<f32>,
    theta_boost: Vec<f32>,
}

impl StdpLayer {
    /// Creates a layer with uniformly random initial weights in
    /// `[0, w_max/2]`.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(
        in_size: usize,
        out_size: usize,
        lif: LifConfig,
        stdp: StdpConfig,
        rng: &mut Rng64,
    ) -> Self {
        assert!(in_size > 0 && out_size > 0, "zero-sized layer");
        let weights = (0..in_size * out_size)
            .map(|_| rng.next_f32() * stdp.w_max / 2.0)
            .collect();
        StdpLayer {
            weights,
            in_size,
            out_size,
            lif,
            stdp,
            v: vec![0.0; out_size],
            pre_trace: vec![0.0; in_size],
            theta_boost: vec![0.0; out_size],
        }
    }

    /// Weight row of output neuron `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn weights_of(&self, j: usize) -> &[f32] {
        assert!(j < self.out_size, "neuron index out of range");
        &self.weights[j * self.in_size..(j + 1) * self.in_size]
    }

    /// Resets membranes and traces (weights untouched).
    pub fn reset_state(&mut self) {
        self.v.iter_mut().for_each(|v| *v = 0.0);
        self.pre_trace.iter_mut().for_each(|t| *t = 0.0);
    }

    /// One timestep with learning: integrates the input spikes, lets at most
    /// one neuron fire (winner-take-all), applies STDP on a fire, and
    /// returns the index of the winner if any.
    pub fn step_learn(&mut self, input_spikes: &[f32], ops: &mut OpCount) -> Option<usize> {
        assert_eq!(input_spikes.len(), self.in_size, "input size mismatch");
        // Trace update.
        for (t, &s) in self.pre_trace.iter_mut().zip(input_spikes) {
            *t = *t * self.stdp.trace_decay + s;
        }
        ops.record_mult(self.in_size as u64);
        // Membrane integration.
        let mut active = 0u64;
        for (j, v) in self.v.iter_mut().enumerate() {
            *v *= self.lif.leak;
            let row = &self.weights[j * self.in_size..(j + 1) * self.in_size];
            for (i, &s) in input_spikes.iter().enumerate() {
                if s != 0.0 {
                    *v += s * row[i];
                    active += 1;
                }
            }
        }
        ops.record_mult(self.out_size as u64);
        ops.record_add(active);
        // Homeostatic thresholds relax toward the base value.
        for b in &mut self.theta_boost {
            *b *= self.stdp.homeostasis_decay;
        }
        // Winner-take-all: the neuron most above its adaptive threshold
        // fires.
        let winner = self
            .v
            .iter()
            .zip(&self.theta_boost)
            .map(|(&v, &b)| v - (self.lif.threshold + b))
            .enumerate()
            .filter(|&(_, margin)| margin >= 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite membranes"))
            .map(|(j, _)| j);
        ops.record_compare(self.out_size as u64);
        if let Some(j) = winner {
            self.theta_boost[j] += self.stdp.homeostasis;
            // Lateral inhibition: everyone resets.
            self.v.iter_mut().for_each(|v| *v = 0.0);
            // STDP update of the winner's row.
            let row = &mut self.weights[j * self.in_size..(j + 1) * self.in_size];
            for (w, &trace) in row.iter_mut().zip(&self.pre_trace) {
                if trace > 0.0 {
                    *w += self.stdp.lr_plus * trace * (self.stdp.w_max - *w);
                } else {
                    *w -= self.stdp.lr_minus * *w;
                }
                *w = w.clamp(0.0, self.stdp.w_max);
            }
            ops.record_mult(2 * self.in_size as u64);
            ops.record_write(self.in_size as u64);
        }
        winner
    }
}

/// Cosine similarity between a weight row and a binary pattern.
pub fn pattern_similarity(weights: &[f32], pattern: &[bool]) -> f64 {
    assert_eq!(weights.len(), pattern.len(), "length mismatch");
    let dot: f64 = weights
        .iter()
        .zip(pattern)
        .map(|(&w, &p)| w as f64 * f64::from(u8::from(p)))
        .sum();
    let wn: f64 = weights.iter().map(|&w| (w as f64).powi(2)).sum::<f64>().sqrt();
    let pn: f64 = (pattern.iter().filter(|&&p| p).count() as f64).sqrt();
    if wn == 0.0 || pn == 0.0 {
        0.0
    } else {
        dot / (wn * pn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_spikes(pattern: &[bool], rng: &mut Rng64) -> Vec<f32> {
        pattern
            .iter()
            .map(|&p| {
                if p && rng.bernoulli(0.8) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn stdp_learns_a_repeated_pattern() {
        let mut rng = Rng64::seed_from_u64(1);
        let pattern: Vec<bool> = (0..16).map(|i| i < 6).collect();
        let mut layer = StdpLayer::new(
            16,
            4,
            LifConfig::new().with_threshold(1.5),
            StdpConfig::new(),
            &mut rng,
        );
        let before: f64 = (0..4)
            .map(|j| pattern_similarity(layer.weights_of(j), &pattern))
            .fold(0.0, f64::max);
        let mut ops = OpCount::new();
        for _ in 0..400 {
            let spikes = pattern_spikes(&pattern, &mut rng);
            layer.step_learn(&spikes, &mut ops);
        }
        let after: f64 = (0..4)
            .map(|j| pattern_similarity(layer.weights_of(j), &pattern))
            .fold(0.0, f64::max);
        assert!(
            after > before && after > 0.9,
            "similarity {before} -> {after}"
        );
    }

    #[test]
    fn two_patterns_capture_different_neurons() {
        let mut rng = Rng64::seed_from_u64(2);
        let pattern_a: Vec<bool> = (0..16).map(|i| i < 6).collect();
        let pattern_b: Vec<bool> = (0..16).map(|i| i >= 10).collect();
        let mut layer = StdpLayer::new(
            16,
            6,
            LifConfig::new().with_threshold(1.5),
            StdpConfig::new(),
            &mut rng,
        );
        let mut ops = OpCount::new();
        for k in 0..800 {
            let p = if k % 2 == 0 { &pattern_a } else { &pattern_b };
            let spikes = pattern_spikes(p, &mut rng);
            layer.step_learn(&spikes, &mut ops);
            layer.reset_state();
        }
        let best = |pattern: &[bool]| {
            (0..6)
                .map(|j| pattern_similarity(layer.weights_of(j), pattern))
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("neurons")
        };
        let (ja, sa) = best(&pattern_a);
        let (jb, sb) = best(&pattern_b);
        assert!(sa > 0.85 && sb > 0.85, "similarities {sa}, {sb}");
        assert_ne!(ja, jb, "different neurons win different patterns");
    }

    #[test]
    fn winner_take_all_allows_one_spike() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut layer = StdpLayer::new(
            4,
            3,
            LifConfig::new().with_threshold(0.1),
            StdpConfig::new(),
            &mut rng,
        );
        let mut ops = OpCount::new();
        // Strong input would push several above threshold; exactly one wins.
        let winner = layer.step_learn(&[1.0, 1.0, 1.0, 1.0], &mut ops);
        assert!(winner.is_some());
    }

    #[test]
    fn weights_stay_bounded() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut layer = StdpLayer::new(
            8,
            2,
            LifConfig::new().with_threshold(0.5),
            StdpConfig::new(),
            &mut rng,
        );
        let mut ops = OpCount::new();
        for _ in 0..500 {
            layer.step_learn(&[1.0; 8], &mut ops);
        }
        for j in 0..2 {
            for &w in layer.weights_of(j) {
                assert!((0.0..=1.0).contains(&w), "weight {w} out of bounds");
            }
        }
    }
}
