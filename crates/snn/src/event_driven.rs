//! Fully event-driven SNN simulation (paper §III-A, [Stuijt et al. µBrain]).
//!
//! Digital neuromorphic processors usually update neuron state with a
//! clocked process; fully event-based state updates avoid the clock but
//! "generally require more memory accesses [and] higher complexity
//! calculations" ([42], [44]). This module implements the event-driven
//! policy — decay-on-demand with per-neuron last-update timestamps — over
//! the *same weights* as a clocked [`SnnNetwork`], so both the functional
//! agreement and the memory-traffic crossover can be measured.

use crate::encode::SpikeTrain;
use crate::network::SnnNetwork;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::frame::{Decoder, Encoder, FrameError};
use evlab_util::{obs, par};

/// Minimum layer width before an injection fans out across threads; the
/// per-spike update touches one weight column, so narrow layers are
/// cheaper serial.
const PAR_MIN_NEURONS: usize = 2048;

#[derive(Debug, Clone)]
struct EdLayer {
    weight: Vec<f32>, // [out, in] row-major
    in_size: usize,
    out_size: usize,
    leak: f32,
    threshold: f32,
    v: Vec<f32>,
    last_step: Vec<u64>,
}

/// Result of an event-driven run.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDrivenResult {
    /// Readout membrane potentials at the final step (class logits).
    pub logits: Tensor,
    /// Total spikes emitted per hidden layer.
    pub spike_counts: Vec<usize>,
}

/// Event-driven execution engine sharing weights with a clocked network.
#[derive(Debug, Clone)]
pub struct EventDrivenSnn {
    layers: Vec<EdLayer>,
    readout_w: Vec<f32>,
    readout_leak: f32,
    classes: usize,
    readout_v: Vec<f32>,
    readout_last: Vec<u64>,
}

impl EventDrivenSnn {
    /// Builds the engine from a clocked network's weights and neuron
    /// parameters.
    pub fn from_network(net: &SnnNetwork) -> Self {
        let layers = net
            .layers()
            .iter()
            .map(|l| EdLayer {
                weight: l.weight().value.as_slice().to_vec(),
                in_size: l.in_size(),
                out_size: l.out_size(),
                leak: l.config().leak,
                threshold: l.config().threshold,
                v: vec![0.0; l.out_size()],
                last_step: vec![0; l.out_size()],
            })
            .collect();
        let classes = net.config().classes;
        EventDrivenSnn {
            layers,
            readout_w: net.readout_weight().as_slice().to_vec(),
            readout_leak: net.config().readout_leak,
            classes,
            readout_v: vec![0.0; classes],
            readout_last: vec![0; classes],
        }
    }

    /// Resets all membranes and timestamps.
    pub fn reset(&mut self) {
        for l in &mut self.layers {
            l.v.iter_mut().for_each(|v| *v = 0.0);
            l.last_step.iter_mut().for_each(|t| *t = 0);
        }
        self.readout_v.iter_mut().for_each(|v| *v = 0.0);
        self.readout_last.iter_mut().for_each(|t| *t = 0);
    }

    fn inject(
        &mut self,
        layer_idx: usize,
        input_idx: usize,
        weight_of_spike: f32,
        t: u64,
        ops: &mut OpCount,
        spike_counts: &mut [usize],
    ) {
        if layer_idx == self.layers.len() {
            // Readout integrator.
            let last_hidden = self
                .layers
                .last()
                .map(|l| l.out_size)
                .unwrap_or(0);
            for c in 0..self.classes {
                let elapsed = t.saturating_sub(self.readout_last[c]);
                if elapsed > 0 {
                    self.readout_v[c] *= self.readout_leak.powi(elapsed as i32);
                    ops.record_mult(1);
                    ops.record_read(2);
                    ops.record_write(2);
                }
                self.readout_last[c] = t;
                self.readout_v[c] +=
                    weight_of_spike * self.readout_w[c * last_hidden + input_idx];
                ops.record_add(1);
                ops.record_read(1); // weight fetch
            }
            return;
        }
        // Chunk the neuron dimension: each output neuron's decay-on-demand,
        // accumulate and threshold touch only its own state, so any
        // chunking is exact. Per-chunk fired lists concatenated in chunk
        // order reproduce the serial ascending-j firing order, and op
        // counts are integer sums, invariant under the split.
        let layer = &mut self.layers[layer_idx];
        let out_size = layer.out_size;
        let in_size = layer.in_size;
        let leak = layer.leak;
        let threshold = layer.threshold;
        let weight = &layer.weight;
        let threads = par::threads();
        let n_chunks = if threads <= 1 || out_size < PAR_MIN_NEURONS {
            1
        } else {
            threads.min(out_size)
        };
        let ranges = par::chunk_ranges(out_size, n_chunks);
        let v_chunks = par::split_slices(&mut layer.v, &ranges);
        let t_chunks = par::split_slices(&mut layer.last_step, &ranges);
        let mut tasks: Vec<_> = ranges
            .iter()
            .zip(v_chunks)
            .zip(t_chunks)
            .map(|((r, v), last)| (r.start, v, last, Vec::new(), 0u64))
            .collect();
        par::for_each_task(&mut tasks, |_, (start, v, last, chunk_fired, decays)| {
            for k in 0..v.len() {
                let j = *start + k;
                let elapsed = t.saturating_sub(last[k]);
                if elapsed > 0 {
                    v[k] *= leak.powi(elapsed as i32);
                    *decays += 1;
                }
                last[k] = t;
                v[k] += weight_of_spike * weight[j * in_size + input_idx];
                if v[k] >= threshold {
                    v[k] -= threshold;
                    chunk_fired.push(j);
                }
            }
        });
        let mut fired = Vec::new();
        let mut decays = 0u64;
        for (_, _, _, chunk_fired, chunk_decays) in tasks {
            fired.extend(chunk_fired);
            decays += chunk_decays;
        }
        // Same totals the serial per-neuron recording produced: each decay
        // is one LUT multiply plus state+timestamp read/rewrite; each
        // neuron pays one weight fetch, one add and one compare.
        ops.record_mult(decays);
        ops.record_read(2 * decays + out_size as u64);
        ops.record_write(2 * decays);
        ops.record_add(out_size as u64);
        ops.record_compare(out_size as u64);
        if obs::enabled() {
            obs::counter_add("snn.event_driven.injections", 1);
            obs::counter_add("snn.event_driven.membrane_updates", out_size as u64);
            obs::counter_add("snn.event_driven.decays", decays);
            obs::counter_add("snn.event_driven.spikes", fired.len() as u64);
        }
        spike_counts[layer_idx] += fired.len();
        for j in fired {
            self.inject(layer_idx + 1, j, 1.0, t, ops, spike_counts);
        }
    }

    /// Serializes the session-mutable state — per-neuron membrane
    /// potentials and last-update steps, hidden layers and readout — as
    /// exact IEEE bit patterns. Weights and neuron parameters are
    /// construction inputs ([`EventDrivenSnn::from_network`]) and are not
    /// recorded; the recovery path rebuilds the engine from the same
    /// trained network before calling [`EventDrivenSnn::load_state`].
    pub fn save_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.layers.len() as u64);
        for l in &self.layers {
            enc.put_f32_slice(&l.v);
            enc.put_u64_slice(&l.last_step);
        }
        enc.put_f32_slice(&self.readout_v);
        enc.put_u64_slice(&self.readout_last);
    }

    /// Restores state written by [`EventDrivenSnn::save_state`] into an
    /// identically-constructed engine, bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] if the payload is truncated or its shapes
    /// (layer count, per-layer width, class count) do not match this
    /// engine; the engine is left untouched then.
    pub fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
        let n = dec.take_u64()? as usize;
        if n != self.layers.len() {
            return Err(dec.corrupt(format!(
                "snapshot has {n} layers, engine has {}",
                self.layers.len()
            )));
        }
        let mut layer_state = Vec::with_capacity(n);
        for l in &self.layers {
            let v = dec.take_f32_vec()?;
            let last = dec.take_u64_vec()?;
            if v.len() != l.out_size || last.len() != l.out_size {
                return Err(dec.corrupt(format!(
                    "layer state width {} != {} neurons",
                    v.len(),
                    l.out_size
                )));
            }
            layer_state.push((v, last));
        }
        let readout_v = dec.take_f32_vec()?;
        let readout_last = dec.take_u64_vec()?;
        if readout_v.len() != self.classes || readout_last.len() != self.classes {
            return Err(dec.corrupt(format!(
                "readout state width {} != {} classes",
                readout_v.len(),
                self.classes
            )));
        }
        for (l, (v, last)) in self.layers.iter_mut().zip(layer_state) {
            l.v = v;
            l.last_step = last;
        }
        self.readout_v = readout_v;
        self.readout_last = readout_last;
        Ok(())
    }

    /// Input dimensionality expected by [`EventDrivenSnn::inject_input`].
    pub fn input_size(&self) -> usize {
        self.layers.first().map(|l| l.in_size).unwrap_or(0)
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Injects a single input spike at `input_idx` at (1-based) step `step`,
    /// propagating any resulting hidden spikes through the network, and
    /// returns the number of hidden spikes emitted. This is the streaming
    /// entry point: a serving session maps each arriving event to an input
    /// index and step and calls this without materialising a
    /// [`SpikeTrain`]. Steps must be non-decreasing between calls; call
    /// [`EventDrivenSnn::reset`] to start a new decision window.
    ///
    /// # Panics
    ///
    /// Panics if `input_idx` is out of range for the input layer.
    pub fn inject_input(&mut self, input_idx: usize, step: u64, ops: &mut OpCount) -> usize {
        assert!(
            input_idx < self.input_size(),
            "input index {input_idx} out of range for {} inputs",
            self.input_size()
        );
        let mut spike_counts = vec![0usize; self.layers.len()];
        self.inject(0, input_idx, 1.0, step, ops, &mut spike_counts);
        spike_counts.iter().sum()
    }

    /// Readout membrane potentials decayed to (1-based) step `step`,
    /// without mutating state — the streaming analogue of the final decay
    /// in [`EventDrivenSnn::process`], usable mid-window.
    pub fn logits_at(&self, step: u64) -> Vec<f32> {
        (0..self.classes)
            .map(|c| {
                let elapsed = step.saturating_sub(self.readout_last[c]);
                if elapsed > 0 {
                    self.readout_v[c] * self.readout_leak.powi(elapsed as i32)
                } else {
                    self.readout_v[c]
                }
            })
            .collect()
    }

    /// Processes a spike train event by event and returns the final logits.
    ///
    /// Events inside one timestep are injected sequentially without decay
    /// between them, matching the clocked semantics of [`SnnNetwork`].
    pub fn process(&mut self, train: &SpikeTrain, ops: &mut OpCount) -> EventDrivenResult {
        self.reset();
        let mut spike_counts = vec![0usize; self.layers.len()];
        let steps = train.num_steps() as u64;
        for t in 0..train.num_steps() {
            // Decay semantics: the clocked network decays at the *start* of
            // each step, so events at step t see state decayed to t + 1
            // conceptually; we decay to t + 1 before injecting.
            for &i in train.at(t) {
                self.inject(0, i as usize, 1.0, t as u64 + 1, ops, &mut spike_counts);
            }
        }
        // Final decay of the readout to the end of the window.
        for c in 0..self.classes {
            let elapsed = steps.saturating_sub(self.readout_last[c]);
            if elapsed > 0 {
                self.readout_v[c] *= self.readout_leak.powi(elapsed as i32);
                ops.record_mult(1);
            }
        }
        EventDrivenResult {
            logits: Tensor::from_vec(&[self.classes], self.readout_v.clone())
                .expect("logit shape"),
            spike_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SnnConfig;
    use evlab_util::Rng64;

    fn dense_train(input: usize, steps: usize, per_step: usize, rng: &mut Rng64) -> SpikeTrain {
        let mut t = SpikeTrain::new(input, steps);
        for s in 0..steps {
            for _ in 0..per_step {
                t.push(s, rng.next_index(input) as u32);
            }
        }
        t
    }

    #[test]
    fn agrees_with_clocked_network() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut net = SnnNetwork::new(SnnConfig::new(12, 3).with_hidden(vec![10]), &mut rng);
        let mut ed = EventDrivenSnn::from_network(&net);
        let mut ops = OpCount::new();
        // The two schedulers differ in one documented way: the clocked
        // network thresholds once per step (at most one spike per neuron
        // per step), while the event-driven engine thresholds after every
        // injection and may fire several times inside a step. Counts must
        // therefore agree within a factor, with event-driven >= clocked,
        // and the class predictions should normally agree.
        let mut agree = 0usize;
        for seed in 0..5u64 {
            let mut trng = Rng64::seed_from_u64(seed);
            let train = dense_train(12, 15, 3, &mut trng);
            let clocked = net.forward(&train, &mut ops);
            let event = ed.process(&train, &mut ops);
            let clocked_spikes: usize = net.last_spike_counts().iter().sum();
            let event_spikes: usize = event.spike_counts.iter().sum();
            assert!(
                event_spikes + 2 >= clocked_spikes,
                "event-driven cannot fire fewer: clocked {clocked_spikes}, event {event_spikes}"
            );
            assert!(
                event_spikes <= 3 * clocked_spikes + 5,
                "spike counts diverge: clocked {clocked_spikes}, event {event_spikes}"
            );
            if clocked.argmax() == event.logits.argmax() {
                agree += 1;
            }
        }
        assert!(agree >= 3, "predictions agree on {agree}/5 runs");
    }

    #[test]
    fn quiet_input_costs_nothing_event_driven() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut net = SnnNetwork::new(SnnConfig::new(16, 2), &mut rng);
        let mut ed = EventDrivenSnn::from_network(&net);
        let quiet = SpikeTrain::new(16, 50);
        let mut ops_ed = OpCount::new();
        ed.process(&quiet, &mut ops_ed);
        let mut ops_clocked = OpCount::new();
        net.forward(&quiet, &mut ops_clocked);
        // Event-driven: zero synaptic work on silence. Clocked: decay
        // multiplies every neuron every step regardless.
        assert_eq!(ops_ed.adds, 0);
        assert!(ops_clocked.mults >= 50 * 64, "clocked pays the clock");
    }

    #[test]
    fn busy_input_costs_more_memory_traffic_event_driven() {
        // The [42]/[44] claim: at high activity, per-event decay-on-demand
        // touches timestamps and state repeatedly and loses to the clocked
        // scan.
        let mut rng = Rng64::seed_from_u64(3);
        let mut net = SnnNetwork::new(SnnConfig::new(16, 2).with_hidden(vec![16]), &mut rng);
        let mut ed = EventDrivenSnn::from_network(&net);
        let mut trng = Rng64::seed_from_u64(4);
        let busy = dense_train(16, 20, 12, &mut trng);
        let mut ops_ed = OpCount::new();
        ed.process(&busy, &mut ops_ed);
        let mut ops_clocked = OpCount::new();
        net.forward(&busy, &mut ops_clocked);
        assert!(
            ops_ed.mem_accesses() > ops_clocked.mem_accesses(),
            "event-driven {} vs clocked {}",
            ops_ed.mem_accesses(),
            ops_clocked.mem_accesses()
        );
    }

    #[test]
    fn streaming_injection_matches_process() {
        let mut rng = Rng64::seed_from_u64(6);
        let net = SnnNetwork::new(SnnConfig::new(12, 3).with_hidden(vec![10]), &mut rng);
        let mut ed = EventDrivenSnn::from_network(&net);
        let mut trng = Rng64::seed_from_u64(7);
        let train = dense_train(12, 15, 3, &mut trng);
        let mut ops = OpCount::new();
        let batch = ed.process(&train, &mut ops);
        // Streaming replay: same injections, one at a time.
        ed.reset();
        let mut spikes = 0usize;
        for t in 0..train.num_steps() {
            for &i in train.at(t) {
                spikes += ed.inject_input(i as usize, t as u64 + 1, &mut ops);
            }
        }
        let logits = ed.logits_at(train.num_steps() as u64);
        assert_eq!(spikes, batch.spike_counts.iter().sum::<usize>());
        for (a, b) in batch.logits.as_slice().iter().zip(&logits) {
            assert!((a - b).abs() < 1e-6, "batch {a} vs streaming {b}");
        }
    }

    #[test]
    fn inject_input_rejects_out_of_range_index() {
        let mut rng = Rng64::seed_from_u64(8);
        let net = SnnNetwork::new(SnnConfig::new(4, 2), &mut rng);
        let mut ed = EventDrivenSnn::from_network(&net);
        assert_eq!(ed.input_size(), 4);
        assert_eq!(ed.classes(), 2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ed.inject_input(4, 1, &mut OpCount::new())
        }));
        assert!(result.is_err());
    }

    #[test]
    fn state_round_trip_resumes_bit_identically() {
        let mut rng = Rng64::seed_from_u64(9);
        let net = SnnNetwork::new(SnnConfig::new(12, 3).with_hidden(vec![10]), &mut rng);
        let mut oracle = EventDrivenSnn::from_network(&net);
        let mut trng = Rng64::seed_from_u64(10);
        let train = dense_train(12, 20, 3, &mut trng);
        let mut ops = OpCount::new();
        // Run the oracle halfway, snapshot, restore into a fresh engine
        // built from the same network, then continue both in lockstep.
        for t in 0..10 {
            for &i in train.at(t) {
                oracle.inject_input(i as usize, t as u64 + 1, &mut ops);
            }
        }
        let mut enc = Encoder::new();
        oracle.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = EventDrivenSnn::from_network(&net);
        restored
            .load_state(&mut Decoder::new(&bytes))
            .expect("valid state");
        for t in 10..20 {
            for &i in train.at(t) {
                oracle.inject_input(i as usize, t as u64 + 1, &mut ops);
                restored.inject_input(i as usize, t as u64 + 1, &mut ops);
            }
        }
        let a = oracle.logits_at(20);
        let b = restored.logits_at(20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "logits must be bit-identical");
        }
    }

    #[test]
    fn load_state_rejects_shape_mismatch() {
        let mut rng = Rng64::seed_from_u64(11);
        let net = SnnNetwork::new(SnnConfig::new(12, 3).with_hidden(vec![10]), &mut rng);
        let ed = EventDrivenSnn::from_network(&net);
        let mut enc = Encoder::new();
        ed.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let other_net = SnnNetwork::new(SnnConfig::new(12, 3).with_hidden(vec![8]), &mut rng);
        let mut other = EventDrivenSnn::from_network(&other_net);
        assert!(other.load_state(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn reset_clears_state() {
        let mut rng = Rng64::seed_from_u64(5);
        let net = SnnNetwork::new(SnnConfig::new(4, 2), &mut rng);
        let mut ed = EventDrivenSnn::from_network(&net);
        let mut train = SpikeTrain::new(4, 3);
        train.push(0, 0);
        let mut ops = OpCount::new();
        let a = ed.process(&train, &mut ops);
        let b = ed.process(&train, &mut ops);
        assert_eq!(a, b, "process resets internally");
    }
}
