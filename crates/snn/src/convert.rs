//! ANN→SNN conversion by rate coding (paper §III-A).
//!
//! "SNNs are obtained through the conversion of a pre-trained neural network
//! with continuous-valued outputs" — the activity of a spiking neuron
//! approximates a ReLU activation via its firing rate. This module
//! implements the standard pipeline:
//!
//! 1. train a ReLU MLP ([`ReluMlp`]),
//! 2. normalize weights by per-layer peak activations on a calibration set
//!    (threshold balancing, [Diehl et al. 2015]),
//! 3. run integrate-and-fire neurons for `T` steps with the input applied
//!    as a constant current.
//!
//! The *unevenness error* — the gap between the true activation and the
//! rate approximation, shrinking with `T` — is measured by
//! [`rate_approximation_error`].

use evlab_tensor::layer::{Layer, Linear, Param, Relu};
use evlab_tensor::loss::cross_entropy;
use evlab_tensor::optim::Optimizer;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::Rng64;

/// A plain ReLU MLP with direct access to its weights (what conversion
/// needs).
pub struct ReluMlp {
    linears: Vec<Linear>,
    relus: Vec<Relu>,
    sizes: Vec<usize>,
}

impl ReluMlp {
    /// Creates an MLP with the given layer sizes, ReLU between all layers
    /// (none after the last).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], rng: &mut Rng64) -> Self {
        assert!(sizes.len() >= 2, "need input and output sizes");
        let linears = sizes
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect::<Vec<_>>();
        let relus = (0..sizes.len() - 2).map(|_| Relu::new()).collect();
        ReluMlp {
            linears,
            relus,
            sizes: sizes.to_vec(),
        }
    }

    /// Layer sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Forward pass returning the logits.
    pub fn forward(&mut self, x: &Tensor, ops: &mut OpCount) -> Tensor {
        let mut current = x.clone();
        for i in 0..self.linears.len() {
            current = self.linears[i].forward(&current, ops);
            if i < self.relus.len() {
                current = self.relus[i].forward(&current, ops);
            }
        }
        current
    }

    /// Forward pass returning every post-ReLU hidden activation plus the
    /// logits (used for calibration).
    pub fn forward_with_activations(
        &mut self,
        x: &Tensor,
        ops: &mut OpCount,
    ) -> (Vec<Tensor>, Tensor) {
        let mut activations = Vec::new();
        let mut current = x.clone();
        for i in 0..self.linears.len() {
            current = self.linears[i].forward(&current, ops);
            if i < self.relus.len() {
                current = self.relus[i].forward(&current, ops);
                activations.push(current.clone());
            }
        }
        (activations, current)
    }

    /// One gradient-accumulating training sample; returns the loss.
    pub fn accumulate(&mut self, x: &Tensor, label: usize, ops: &mut OpCount) -> f32 {
        let logits = self.forward(x, ops);
        let (loss, grad) = cross_entropy(&logits, label);
        let mut current = grad;
        for i in (0..self.linears.len()).rev() {
            if i < self.relus.len() {
                current = self.relus[i].backward(&current, ops);
            }
            current = self.linears[i].backward(&current, ops);
        }
        loss
    }

    /// Applies an optimizer step to all parameters.
    pub fn step(&mut self, optimizer: &mut dyn Optimizer) {
        let mut params: Vec<&mut Param> = self
            .linears
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect();
        optimizer.step(&mut params);
    }

    /// The linear layers (weights `[out, in]` + biases).
    pub fn linears(&self) -> &[Linear] {
        &self.linears
    }
}

/// A rate-coded integrate-and-fire network converted from a [`ReluMlp`].
#[derive(Debug, Clone)]
pub struct ConvertedSnn {
    /// Per layer: normalized weights (row-major `[out, in]`).
    weights: Vec<Vec<f32>>,
    /// Per layer: normalized biases (applied as constant current).
    biases: Vec<Vec<f32>>,
    sizes: Vec<usize>,
    /// Per-layer activation scale factors recorded at conversion.
    scales: Vec<f32>,
    /// Peak input value over the calibration set (input normalizer).
    input_peak: f32,
}

/// Result of simulating a converted network.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertedRun {
    /// Output spike counts (class scores).
    pub output_counts: Vec<u32>,
    /// Firing rate (spikes/step) of every hidden layer, flattened per layer.
    pub hidden_rates: Vec<Vec<f32>>,
    /// Total spikes across all layers.
    pub total_spikes: usize,
}

impl ConvertedSnn {
    /// Converts a trained MLP using peak activations on `calibration`
    /// inputs for threshold balancing.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty.
    pub fn convert(mlp: &mut ReluMlp, calibration: &[Tensor]) -> Self {
        assert!(!calibration.is_empty(), "calibration set required");
        let mut ops = OpCount::new();
        let hidden_layers = mlp.linears().len() - 1;
        let mut peaks = vec![0.0f32; hidden_layers];
        let mut input_peak = 0.0f32;
        for x in calibration {
            input_peak = input_peak.max(x.max()).max(1e-6);
            let (acts, _) = mlp.forward_with_activations(x, &mut ops);
            for (i, a) in acts.iter().enumerate() {
                peaks[i] = peaks[i].max(a.max());
            }
        }
        for p in &mut peaks {
            *p = p.max(1e-6);
        }
        // Weight normalization: w' = w * λ_prev / λ_cur, b' = b / λ_cur,
        // where λ is the peak activation of the layer's output (input peak
        // for layer 0's predecessor).
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        let mut scales = Vec::new();
        let mut prev_scale = input_peak;
        for (i, lin) in mlp.linears().iter().enumerate() {
            let cur_scale = if i < hidden_layers { peaks[i] } else { 1.0 };
            let w: Vec<f32> = lin
                .weight()
                .as_slice()
                .iter()
                .map(|&v| v * prev_scale / cur_scale)
                .collect();
            let b: Vec<f32> = lin
                .bias()
                .as_slice()
                .iter()
                .map(|&v| v / cur_scale)
                .collect();
            weights.push(w);
            biases.push(b);
            scales.push(cur_scale);
            prev_scale = cur_scale;
        }
        ConvertedSnn {
            weights,
            biases,
            sizes: mlp.sizes().to_vec(),
            scales,
            input_peak,
        }
    }

    /// Per-layer scale factors chosen at conversion.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Simulates `steps` timesteps of integrate-and-fire neurons with the
    /// (normalized) input applied as a constant current.
    ///
    /// # Panics
    ///
    /// Panics if the input length mismatches the network.
    pub fn simulate(&self, input: &Tensor, steps: usize, ops: &mut OpCount) -> ConvertedRun {
        assert_eq!(input.len(), self.sizes[0], "input size mismatch");
        // Normalize by the calibration peak so the drive matches the scale
        // the weights were balanced for (clipped at 1 spike/step).
        let drive: Vec<f32> = input
            .as_slice()
            .iter()
            .map(|&v| (v.max(0.0) / self.input_peak).min(1.0))
            .collect();
        let n_layers = self.weights.len();
        let mut v: Vec<Vec<f32>> = self.sizes[1..]
            .iter()
            .map(|&n| vec![0.0f32; n])
            .collect();
        let mut counts: Vec<Vec<u32>> = self.sizes[1..]
            .iter()
            .map(|&n| vec![0u32; n])
            .collect();
        let mut total_spikes = 0usize;
        for _ in 0..steps {
            // Layer 0 receives the analog drive directly.
            let mut input_rates: Vec<f32> = drive.clone();
            for l in 0..n_layers {
                let in_size = self.sizes[l];
                let out_size = self.sizes[l + 1];
                let w = &self.weights[l];
                let mut spikes = vec![0.0f32; out_size];
                for j in 0..out_size {
                    let mut current = self.biases[l][j];
                    for (i, &r) in input_rates.iter().enumerate() {
                        if r != 0.0 {
                            current += r * w[j * in_size + i];
                        }
                    }
                    v[l][j] += current;
                    if v[l][j] >= 1.0 {
                        v[l][j] -= 1.0;
                        spikes[j] = 1.0;
                        counts[l][j] += 1;
                        total_spikes += 1;
                    }
                }
                let active = input_rates.iter().filter(|&&r| r != 0.0).count() as u64;
                ops.record_add(active * out_size as u64);
                ops.record_compare(out_size as u64);
                input_rates = spikes;
            }
        }
        let hidden_rates: Vec<Vec<f32>> = counts[..n_layers - 1]
            .iter()
            .map(|c| c.iter().map(|&n| n as f32 / steps as f32).collect())
            .collect();
        ConvertedRun {
            output_counts: counts[n_layers - 1].clone(),
            hidden_rates,
            total_spikes,
        }
    }
}

/// Mean absolute error between the ANN's normalized hidden activations and
/// the converted SNN's firing rates over the given inputs — the unevenness
/// error, which shrinks as `steps` grows.
pub fn rate_approximation_error(
    mlp: &mut ReluMlp,
    snn: &ConvertedSnn,
    inputs: &[Tensor],
    steps: usize,
) -> f64 {
    let mut ops = OpCount::new();
    let mut err_sum = 0.0f64;
    let mut count = 0usize;
    for x in inputs {
        let (acts, _) = mlp.forward_with_activations(x, &mut ops);
        let run = snn.simulate(x, steps, &mut ops);
        for (layer, act) in acts.iter().enumerate() {
            let scale = snn.scales()[layer];
            for (a, r) in act.as_slice().iter().zip(&run.hidden_rates[layer]) {
                let normalized = (a / scale).clamp(0.0, 1.0);
                err_sum += (normalized as f64 - *r as f64).abs();
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        err_sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_tensor::optim::Adam;

    fn trained_mlp(rng: &mut Rng64) -> (ReluMlp, Vec<(Tensor, usize)>) {
        // Task: which of 4 input quadrants carries the mass.
        let mut samples = Vec::new();
        for i in 0..80 {
            let class = i % 4;
            let mut x = vec![0.0f32; 8];
            for j in 0..2 {
                x[class * 2 + j] = 0.5 + 0.5 * rng.next_f32();
            }
            samples.push((Tensor::from_vec(&[8], x).expect("ok"), class));
        }
        let mut mlp = ReluMlp::new(&[8, 16, 4], rng);
        let mut opt = Adam::new(0.02);
        let mut ops = OpCount::new();
        for _ in 0..40 {
            for (x, label) in &samples {
                mlp.accumulate(x, *label, &mut ops);
            }
            mlp.step(&mut opt);
        }
        (mlp, samples)
    }

    #[test]
    fn mlp_trains_on_quadrant_task() {
        let mut rng = Rng64::seed_from_u64(1);
        let (mut mlp, samples) = trained_mlp(&mut rng);
        let mut ops = OpCount::new();
        let acc = samples
            .iter()
            .filter(|(x, l)| mlp.forward(x, &mut ops).argmax() == *l)
            .count() as f64
            / samples.len() as f64;
        assert!(acc > 0.95, "ANN accuracy {acc}");
    }

    #[test]
    fn converted_snn_matches_ann_predictions() {
        let mut rng = Rng64::seed_from_u64(2);
        let (mut mlp, samples) = trained_mlp(&mut rng);
        let calibration: Vec<Tensor> = samples.iter().take(20).map(|(x, _)| x.clone()).collect();
        let snn = ConvertedSnn::convert(&mut mlp, &calibration);
        let mut ops = OpCount::new();
        let mut agree = 0usize;
        for (x, _) in samples.iter().take(40) {
            let ann_pred = mlp.forward(x, &mut ops).argmax();
            let run = snn.simulate(x, 100, &mut ops);
            let snn_pred = run
                .output_counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| c)
                .map(|(i, _)| i)
                .expect("classes");
            if ann_pred == snn_pred {
                agree += 1;
            }
        }
        assert!(agree >= 34, "agreement {agree}/40");
    }

    #[test]
    fn unevenness_error_shrinks_with_timesteps() {
        let mut rng = Rng64::seed_from_u64(3);
        let (mut mlp, samples) = trained_mlp(&mut rng);
        let calibration: Vec<Tensor> = samples.iter().take(20).map(|(x, _)| x.clone()).collect();
        let snn = ConvertedSnn::convert(&mut mlp, &calibration);
        let probe: Vec<Tensor> = samples.iter().take(10).map(|(x, _)| x.clone()).collect();
        let short = rate_approximation_error(&mut mlp, &snn, &probe, 10);
        let long = rate_approximation_error(&mut mlp, &snn, &probe, 200);
        assert!(
            long < short,
            "error must shrink with T: T=10 -> {short}, T=200 -> {long}"
        );
        assert!(long < 0.1, "long-horizon error {long}");
    }

    #[test]
    fn spike_activity_scales_with_timesteps() {
        let mut rng = Rng64::seed_from_u64(4);
        let (mut mlp, samples) = trained_mlp(&mut rng);
        let calibration: Vec<Tensor> = samples.iter().take(10).map(|(x, _)| x.clone()).collect();
        let snn = ConvertedSnn::convert(&mut mlp, &calibration);
        let mut ops = OpCount::new();
        let x = &samples[0].0;
        let short = snn.simulate(x, 20, &mut ops).total_spikes;
        let long = snn.simulate(x, 200, &mut ops).total_spikes;
        assert!(long > 5 * short, "rate coding cost grows with T: {short} -> {long}");
    }

    #[test]
    #[should_panic(expected = "calibration set required")]
    fn empty_calibration_panics() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut mlp = ReluMlp::new(&[2, 3, 2], &mut rng);
        ConvertedSnn::convert(&mut mlp, &[]);
    }
}
