//! Surrogate gradients for the spiking nonlinearity (paper §III-A,
//! [Neftci et al. 2019]).
//!
//! The derivative of the spike function is a delta at threshold — zero
//! everywhere else — so backpropagation replaces it with a smooth surrogate
//! evaluated at the membrane distance to threshold.

/// The surrogate-gradient family to use during BPTT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Surrogate {
    /// `1 / (1 + slope·|x|)²` — the SuperSpike fast sigmoid.
    FastSigmoid {
        /// Sharpness; larger is closer to the true delta.
        slope: f32,
    },
    /// `max(0, 1 − |x|/width) / width` — triangular window.
    Triangle {
        /// Half-width of the window.
        width: f32,
    },
    /// `1 / (1 + (π·alpha·x)²) · alpha` — scaled arctan derivative.
    Arctan {
        /// Sharpness.
        alpha: f32,
    },
}

impl Surrogate {
    /// The default used by the training code (fast sigmoid, slope 5).
    pub fn new() -> Self {
        Surrogate::FastSigmoid { slope: 5.0 }
    }

    /// Surrogate derivative at membrane distance `x = v − θ`.
    pub fn grad(&self, x: f32) -> f32 {
        match *self {
            Surrogate::FastSigmoid { slope } => {
                let d = 1.0 + slope * x.abs();
                1.0 / (d * d)
            }
            Surrogate::Triangle { width } => {
                let t = 1.0 - x.abs() / width;
                if t > 0.0 {
                    t / width
                } else {
                    0.0
                }
            }
            Surrogate::Arctan { alpha } => {
                let y = std::f32::consts::PI * alpha * x;
                alpha / (1.0 + y * y)
            }
        }
    }
}

impl Default for Surrogate {
    fn default() -> Self {
        Surrogate::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> Vec<Surrogate> {
        vec![
            Surrogate::FastSigmoid { slope: 5.0 },
            Surrogate::Triangle { width: 1.0 },
            Surrogate::Arctan { alpha: 2.0 },
        ]
    }

    #[test]
    fn peak_at_threshold() {
        for s in all() {
            let at_zero = s.grad(0.0);
            for x in [-2.0f32, -0.5, 0.5, 2.0] {
                assert!(s.grad(x) <= at_zero, "{s:?} not peaked at 0");
            }
            assert!(at_zero > 0.0);
        }
    }

    #[test]
    fn symmetric() {
        for s in all() {
            for x in [0.1f32, 0.7, 1.3] {
                assert!((s.grad(x) - s.grad(-x)).abs() < 1e-6, "{s:?}");
            }
        }
    }

    #[test]
    fn decays_away_from_threshold() {
        for s in all() {
            assert!(s.grad(5.0) < 0.1 * s.grad(0.0), "{s:?} too wide");
        }
    }

    #[test]
    fn triangle_has_compact_support() {
        let s = Surrogate::Triangle { width: 1.0 };
        assert_eq!(s.grad(1.5), 0.0);
        assert!(s.grad(0.9) > 0.0);
    }
}
