//! Event-to-spike encodings.

use evlab_events::EventStream;
use evlab_util::Rng64;

/// A binary spike train: `steps × size`, stored as per-step lists of active
/// indices (spikes are sparse).
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeTrain {
    size: usize,
    steps: Vec<Vec<u32>>,
}

impl SpikeTrain {
    /// Creates an empty train of `steps` timesteps over `size` inputs.
    pub fn new(size: usize, steps: usize) -> Self {
        SpikeTrain {
            size,
            steps: vec![Vec::new(); steps],
        }
    }

    /// Input dimensionality.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of timesteps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Active indices at step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn at(&self, t: usize) -> &[u32] {
        &self.steps[t]
    }

    /// Adds a spike.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `index` is out of range.
    pub fn push(&mut self, t: usize, index: u32) {
        assert!(t < self.steps.len(), "step out of range");
        assert!((index as usize) < self.size, "index out of range");
        self.steps[t].push(index);
    }

    /// Total number of spikes.
    pub fn total_spikes(&self) -> usize {
        self.steps.iter().map(|s| s.len()).sum()
    }

    /// Mean spikes per step per input — the input activity the event-driven
    /// cost model scales with.
    pub fn density(&self) -> f64 {
        if self.steps.is_empty() || self.size == 0 {
            return 0.0;
        }
        self.total_spikes() as f64 / (self.steps.len() * self.size) as f64
    }

    /// Dense `f32` view of step `t` (for BPTT training).
    pub fn dense_step(&self, t: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; self.size];
        for &i in self.at(t) {
            v[i as usize] += 1.0;
        }
        v
    }
}

/// Bins an event stream into a spike train: input index =
/// `polarity_channel · (W·H) + y·W + x`, one timestep per `dt_us`.
///
/// Multiple events of one pixel in one bin produce multiple spikes (the
/// weighted sum sees the multiplicity).
///
/// # Panics
///
/// Panics if `dt_us == 0` or `num_steps == 0`.
///
/// # Examples
///
/// ```
/// use evlab_events::{Event, EventStream, Polarity};
/// use evlab_snn::encode::events_to_spikes;
///
/// let s = EventStream::from_events(
///     (4, 4),
///     vec![Event::new(0, 1, 1, Polarity::On), Event::new(1_500, 2, 2, Polarity::Off)],
/// )?;
/// let train = events_to_spikes(&s, 1_000, 3);
/// assert_eq!(train.size(), 2 * 16);
/// assert_eq!(train.at(0), &[5]);            // ON channel, (1,1)
/// assert_eq!(train.at(1), &[16 + 10]);      // OFF channel, (2,2)
/// # Ok::<(), evlab_events::EventOrderError>(())
/// ```
pub fn events_to_spikes(stream: &EventStream, dt_us: u64, num_steps: usize) -> SpikeTrain {
    assert!(dt_us > 0, "dt must be positive");
    assert!(num_steps > 0, "need at least one step");
    let (w, h) = stream.resolution();
    let pixels = w as usize * h as usize;
    let mut train = SpikeTrain::new(2 * pixels, num_steps);
    let t0 = stream.start().map(|t| t.as_micros()).unwrap_or(0);
    for e in stream.iter() {
        let step = ((e.t.as_micros() - t0) / dt_us) as usize;
        if step >= num_steps {
            break;
        }
        let index =
            e.polarity.channel() * pixels + e.y as usize * w as usize + e.x as usize;
        train.push(step, index as u32);
    }
    train
}

/// Poisson rate coding of an analog vector: each input fires with
/// probability proportional to its (clamped, normalized) value per step.
/// The standard input coding for ANN→SNN conversion ([Diehl et al. 2015]).
///
/// # Panics
///
/// Panics if `num_steps == 0` or `max_rate` is outside `(0, 1]`.
pub fn rate_encode(
    values: &[f32],
    num_steps: usize,
    max_rate: f64,
    rng: &mut Rng64,
) -> SpikeTrain {
    assert!(num_steps > 0, "need at least one step");
    assert!(
        max_rate > 0.0 && max_rate <= 1.0,
        "max_rate must be in (0, 1]"
    );
    let peak = values.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-12);
    let mut train = SpikeTrain::new(values.len(), num_steps);
    for t in 0..num_steps {
        for (i, &v) in values.iter().enumerate() {
            let p = (v.max(0.0) / peak) as f64 * max_rate;
            if rng.bernoulli(p) {
                train.push(t, i as u32);
            }
        }
    }
    train
}

/// Time-to-first-spike coding: each input fires exactly once, earlier for
/// larger values; zero/negative values never fire. Produces far sparser
/// activity than rate coding ([Rueckauer & Liu 2018]).
///
/// # Panics
///
/// Panics if `num_steps == 0`.
pub fn ttfs_encode(values: &[f32], num_steps: usize) -> SpikeTrain {
    assert!(num_steps > 0, "need at least one step");
    let peak = values.iter().fold(0.0f32, |m, &v| m.max(v)).max(1e-12);
    let mut train = SpikeTrain::new(values.len(), num_steps);
    for (i, &v) in values.iter().enumerate() {
        if v <= 0.0 {
            continue;
        }
        // Largest value fires at step 0; smallest near the end.
        let frac = 1.0 - (v / peak) as f64;
        let t = (frac * (num_steps - 1) as f64).round() as usize;
        train.push(t.min(num_steps - 1), i as u32);
    }
    train
}

/// Binary (temporal-pattern) coding ([Rueckauer & Liu 2021]): each value is
/// quantized to `bits` bits and the spike at step `k` carries the bit of
/// weight `2^-(k+1)`. At most `bits` spikes encode any value — far sparser
/// than rate coding and exact up to quantization, at the price of requiring
/// the decoder to weight spikes by their arrival step.
///
/// Values are clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `bits == 0` or `bits > 16`.
pub fn binary_encode(values: &[f32], bits: usize) -> SpikeTrain {
    assert!(bits > 0 && bits <= 16, "bits must be in 1..=16");
    let mut train = SpikeTrain::new(values.len(), bits);
    let levels = (1u32 << bits) - 1;
    for (i, &v) in values.iter().enumerate() {
        let q = (v.clamp(0.0, 1.0) * levels as f32).round() as u32;
        for k in 0..bits {
            // Bit of weight 2^-(k+1) is bit (bits-1-k) of q.
            if q >> (bits - 1 - k) & 1 == 1 {
                train.push(k, i as u32);
            }
        }
    }
    train
}

/// Decodes a binary-coded spike train back to values in `[0, 1]`.
pub fn binary_decode(train: &SpikeTrain, bits: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; train.size()];
    let levels = ((1u32 << bits) - 1) as f32;
    for k in 0..train.num_steps().min(bits) {
        let weight = (1u32 << (bits - 1 - k)) as f32 / levels;
        for &i in train.at(k) {
            out[i as usize] += weight;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::{Event, Polarity};

    #[test]
    fn spike_train_accounting() {
        let mut t = SpikeTrain::new(4, 3);
        t.push(0, 1);
        t.push(0, 2);
        t.push(2, 3);
        assert_eq!(t.total_spikes(), 3);
        assert_eq!(t.density(), 0.25);
        assert_eq!(t.dense_step(0), vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(t.dense_step(1), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn push_validates_index() {
        SpikeTrain::new(2, 1).push(0, 5);
    }

    #[test]
    fn events_bin_correctly() {
        let s = EventStream::from_events(
            (4, 4),
            vec![
                Event::new(0, 0, 0, Polarity::On),
                Event::new(999, 1, 0, Polarity::On),
                Event::new(1_000, 1, 0, Polarity::On),
                Event::new(5_000, 3, 3, Polarity::Off),
            ],
        )
        .expect("ok");
        let train = events_to_spikes(&s, 1_000, 4);
        assert_eq!(train.at(0), &[0, 1]);
        assert_eq!(train.at(1), &[1]);
        // Event at 5ms is beyond the 4-step horizon: dropped.
        assert_eq!(train.total_spikes(), 3);
    }

    #[test]
    fn multiplicities_are_preserved() {
        let s = EventStream::from_events(
            (2, 2),
            vec![
                Event::new(0, 0, 0, Polarity::On),
                Event::new(1, 0, 0, Polarity::On),
            ],
        )
        .expect("ok");
        let train = events_to_spikes(&s, 1_000, 1);
        assert_eq!(train.dense_step(0)[0], 2.0);
    }

    #[test]
    fn rate_encoding_tracks_values() {
        let mut rng = Rng64::seed_from_u64(1);
        let values = vec![1.0, 0.5, 0.0];
        let train = rate_encode(&values, 2000, 1.0, &mut rng);
        let counts: Vec<usize> = (0..3)
            .map(|i| {
                (0..2000)
                    .filter(|&t| train.at(t).contains(&(i as u32)))
                    .count()
            })
            .collect();
        assert!(counts[0] > 1900, "max value fires ~every step: {}", counts[0]);
        assert!((counts[1] as f64 - 1000.0).abs() < 100.0, "{}", counts[1]);
        assert_eq!(counts[2], 0);
    }

    #[test]
    fn binary_coding_round_trips_within_quantization() {
        let values = vec![0.0, 0.25, 0.5, 0.75, 1.0, 0.33];
        for bits in [4usize, 8, 12] {
            let train = binary_encode(&values, bits);
            let decoded = binary_decode(&train, bits);
            let tol = 1.0 / (1u32 << bits) as f32;
            for (v, d) in values.iter().zip(&decoded) {
                assert!((v - d).abs() <= tol, "bits {bits}: {v} vs {d}");
            }
        }
    }

    #[test]
    fn binary_coding_is_sparser_than_rate_coding() {
        let mut rng = Rng64::seed_from_u64(5);
        let values: Vec<f32> = (0..64).map(|_| rng.next_f32()).collect();
        let binary = binary_encode(&values, 8);
        let rate = rate_encode(&values, 256, 1.0, &mut rng);
        // 8 bits give 8-bit precision; rate coding needs 256 steps for the
        // same resolution and fires orders of magnitude more.
        assert!(binary.total_spikes() <= 64 * 8);
        assert!(
            rate.total_spikes() > 5 * binary.total_spikes(),
            "rate {} vs binary {}",
            rate.total_spikes(),
            binary.total_spikes()
        );
    }

    #[test]
    fn binary_coding_clamps_out_of_range() {
        let train = binary_encode(&[-0.5, 2.0], 4);
        let decoded = binary_decode(&train, 4);
        assert_eq!(decoded[0], 0.0);
        assert!((decoded[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ttfs_orders_by_magnitude_and_is_sparse() {
        let values = vec![1.0, 0.5, 0.1, 0.0, -1.0];
        let train = ttfs_encode(&values, 10);
        // Exactly one spike per positive value.
        assert_eq!(train.total_spikes(), 3);
        let first_spike = |i: u32| {
            (0..10)
                .find(|&t| train.at(t).contains(&i))
                .expect("spikes")
        };
        assert!(first_spike(0) < first_spike(1));
        assert!(first_spike(1) < first_spike(2));
        // TTFS is much sparser than rate coding for the same values.
        let mut rng = Rng64::seed_from_u64(2);
        let rate = rate_encode(&values, 10, 1.0, &mut rng);
        assert!(train.total_spikes() < rate.total_spikes());
    }
}
