//! GNN accelerator models (paper §IV, [Liang EnGN], [Yan HyGCN]).
//!
//! Dedicated GNN accelerators split execution into a memory-bound *gather*
//! phase (irregular neighbour fetches) and a compute-bound
//! *aggregate/update* phase (dense MACs). The paper's point: existing
//! designs target datacenter graphs and "are poorly adapted for the sparse
//! streaming nature of event-data and low-power operation at the edge" —
//! captured here by two presets whose memory hierarchies differ.

use crate::energy::EnergyModel;
use crate::report::CostReport;
use evlab_tensor::OpCount;
use evlab_util::obs;

/// Where the graph and features live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GnnDeployment {
    /// Datacenter accelerator: large graphs, features stream from DRAM,
    /// wide MAC arrays.
    Datacenter,
    /// Hypothetical near-sensor accelerator: sliding-window graph held
    /// entirely in on-chip SRAM — the "new neuromorphic event-graph
    /// hardware" §V calls for.
    Edge,
}

/// A gather–aggregate–update GNN accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnnAccelerator {
    energy: EnergyModel,
    deployment: GnnDeployment,
    /// Parallel MAC lanes in the update phase.
    pub lanes: usize,
    /// Clock frequency (Hz).
    pub clock_hz: f64,
    /// Irregular-gather penalty on memory energy.
    pub gather_penalty: f64,
}

impl GnnAccelerator {
    /// Creates an accelerator for the given deployment.
    pub fn new(energy: EnergyModel, deployment: GnnDeployment) -> Self {
        match deployment {
            GnnDeployment::Datacenter => GnnAccelerator {
                energy,
                deployment,
                lanes: 512,
                clock_hz: 1e9,
                gather_penalty: 1.5,
            },
            GnnDeployment::Edge => GnnAccelerator {
                energy,
                deployment,
                lanes: 16,
                clock_hz: 200e6,
                gather_penalty: 1.2,
            },
        }
    }

    /// The deployment preset.
    pub fn deployment(&self) -> GnnDeployment {
        self.deployment
    }

    /// Prices a workload.
    ///
    /// * `ops` — measured counts from the GNN forward pass(es).
    /// * `edges` — gathered edges (each fetches one neighbour feature row).
    /// * `feature_dim` — feature row width in words.
    /// * `graph_words` — total graph + feature storage footprint in words.
    pub fn price(
        &self,
        ops: &OpCount,
        edges: u64,
        feature_dim: usize,
        graph_words: usize,
    ) -> CostReport {
        let compute_pj = ops.effective_macs as f64
            * (self.energy.add_pj + self.energy.mult_pj)
            + ops.adds as f64 * self.energy.add_pj
            + ops.mults as f64 * self.energy.mult_pj;
        // Gather: one feature row per edge, irregular.
        let gather_words = edges as f64 * feature_dim as f64;
        let access_pj = match self.deployment {
            // Datacenter graphs spill to DRAM.
            GnnDeployment::Datacenter => self.energy.dram_pj,
            // Edge sliding window fits the footprint-selected level.
            GnnDeployment::Edge => self.energy.access_energy_for_footprint(graph_words),
        };
        let memory_pj = gather_words * access_pj * self.gather_penalty;
        let cycles = ops.effective_macs as f64 / self.lanes as f64;
        if obs::enabled() {
            obs::counter_add("hw.gnn_accel.reports", 1);
            obs::counter_add("hw.gnn_accel.gathered_edges", edges);
        }
        CostReport {
            compute_pj,
            memory_pj,
            latency_us: cycles / self.clock_hz * 1e6,
            footprint_bytes: graph_words as u64 * self.energy.bytes_per_word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gnn_ops() -> OpCount {
        let mut ops = OpCount::new();
        ops.record_mac(500_000, 500_000);
        ops
    }

    #[test]
    fn edge_preset_beats_datacenter_on_small_windows() {
        // A 50k-word sliding window fits on-chip at the edge; the
        // datacenter design streams it from DRAM.
        let dc = GnnAccelerator::new(EnergyModel::nm45(), GnnDeployment::Datacenter);
        let edge = GnnAccelerator::new(EnergyModel::nm45(), GnnDeployment::Edge);
        let ops = gnn_ops();
        let a = dc.price(&ops, 10_000, 16, 50_000);
        let b = edge.price(&ops, 10_000, 16, 50_000);
        assert!(
            a.memory_pj > 50.0 * b.memory_pj,
            "DRAM gather {} vs SRAM gather {}",
            a.memory_pj,
            b.memory_pj
        );
    }

    #[test]
    fn datacenter_wins_on_raw_latency() {
        let dc = GnnAccelerator::new(EnergyModel::nm45(), GnnDeployment::Datacenter);
        let edge = GnnAccelerator::new(EnergyModel::nm45(), GnnDeployment::Edge);
        let ops = gnn_ops();
        assert!(
            dc.price(&ops, 10_000, 16, 50_000).latency_us
                < edge.price(&ops, 10_000, 16, 50_000).latency_us
        );
    }

    #[test]
    fn gather_cost_scales_with_edges() {
        let edge = GnnAccelerator::new(EnergyModel::nm45(), GnnDeployment::Edge);
        let ops = gnn_ops();
        let few = edge.price(&ops, 1_000, 16, 50_000);
        let many = edge.price(&ops, 100_000, 16, 50_000);
        assert!(many.memory_pj > 50.0 * few.memory_pj);
    }
}
