//! Systolic processing-element array (paper §III-B, [Jouppi et al. TPU]).
//!
//! Distributes convolutions over a PE grid with deterministic memory access
//! and heavy data reuse, but executes the *nominal* MAC count — zeros in
//! feature maps and weights are not skipped.

use crate::energy::EnergyModel;
use crate::report::CostReport;
use evlab_tensor::OpCount;
use evlab_util::obs;

/// A weight-stationary systolic array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystolicArray {
    energy: EnergyModel,
    /// PE grid rows.
    pub rows: usize,
    /// PE grid columns.
    pub cols: usize,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Average spatial utilization of the grid for the mapped layer shapes
    /// (1.0 = perfect fit).
    pub utilization: f64,
    /// Data-reuse factor: how many MACs each fetched word serves on
    /// average (systolic forwarding between neighbours).
    pub reuse: f64,
}

impl SystolicArray {
    /// A 64×64 array at 700 MHz with 85 % utilization and 16× reuse.
    pub fn new(energy: EnergyModel) -> Self {
        SystolicArray {
            energy,
            rows: 64,
            cols: 64,
            clock_hz: 700e6,
            utilization: 0.85,
            reuse: 16.0,
        }
    }

    /// Returns a copy with a different grid size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_grid(mut self, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be nonzero");
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Prices a workload. The array executes `ops.macs` (nominal — no zero
    /// skipping); each fetched word is reused `reuse` times thanks to the
    /// systolic dataflow; access pattern is deterministic (no penalty).
    pub fn price(&self, ops: &OpCount, weight_words: usize) -> CostReport {
        let macs = ops.macs as f64;
        let compute_pj = macs * (self.energy.add_pj + self.energy.mult_pj);
        let accesses = macs / self.reuse * 2.0; // weight + activation
        let access_pj = self.energy.access_energy_for_footprint(weight_words);
        let memory_pj = accesses * access_pj;
        let pes = (self.rows * self.cols) as f64;
        let cycles = macs / (pes * self.utilization);
        if obs::enabled() {
            obs::counter_add("hw.systolic.reports", 1);
            obs::counter_add("hw.systolic.nominal_macs", ops.macs);
        }
        CostReport {
            compute_pj,
            memory_pj,
            latency_us: cycles / self.clock_hz * 1e6,
            footprint_bytes: weight_words as u64 * self.energy.bytes_per_word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_ops(nominal: u64, effective: u64) -> OpCount {
        let mut ops = OpCount::new();
        ops.record_mac(nominal, effective);
        ops
    }

    #[test]
    fn no_zero_skipping() {
        let array = SystolicArray::new(EnergyModel::nm45());
        let dense = array.price(&conv_ops(1_000_000, 1_000_000), 50_000);
        let sparse = array.price(&conv_ops(1_000_000, 100_000), 50_000);
        assert_eq!(
            dense.total_pj(),
            sparse.total_pj(),
            "systolic arrays pay nominal cost regardless of sparsity"
        );
        assert_eq!(dense.latency_us, sparse.latency_us);
    }

    #[test]
    fn reuse_cuts_memory_traffic() {
        let mut low = SystolicArray::new(EnergyModel::nm45());
        low.reuse = 1.0;
        let mut high = SystolicArray::new(EnergyModel::nm45());
        high.reuse = 32.0;
        let ops = conv_ops(1_000_000, 1_000_000);
        assert!(low.price(&ops, 50_000).memory_pj > 10.0 * high.price(&ops, 50_000).memory_pj);
    }

    #[test]
    fn bigger_grid_is_faster() {
        let small = SystolicArray::new(EnergyModel::nm45()).with_grid(16, 16);
        let big = SystolicArray::new(EnergyModel::nm45()).with_grid(128, 128);
        let ops = conv_ops(10_000_000, 10_000_000);
        assert!(big.price(&ops, 50_000).latency_us < small.price(&ops, 50_000).latency_us);
    }
}
