//! Zero-skipping CNN accelerators (paper §III-B, [62]–[65]).
//!
//! Two innovations over the systolic baseline: (1) skip multiplications by
//! zero — activation zeros ([Aimar NullHop]), weight zeros ([Zhang
//! Cambricon-X]), or both ([Chen Eyeriss v2]); (2) store data in compressed
//! form to cut memory traffic. The price: a non-deterministic SRAM access
//! pattern, modelled as a memory-energy penalty, unless sparsity is
//! *structured* ([Liu S2TA]), which restores determinism.

use crate::energy::EnergyModel;
use crate::report::CostReport;
use evlab_tensor::OpCount;
use evlab_util::obs;

/// Zero-skipping accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZeroSkipAccelerator {
    energy: EnergyModel,
    /// Skip zero activations (feature-map sparsity).
    pub skip_activations: bool,
    /// Skip zero weights (pruned-model sparsity).
    pub skip_weights: bool,
    /// Sparsity has hardware-friendly structure: no access-pattern penalty.
    pub structured: bool,
    /// Memory-energy penalty factor for non-deterministic access.
    pub irregular_penalty: f64,
    /// Number of parallel MAC lanes.
    pub lanes: usize,
    /// Clock frequency (Hz).
    pub clock_hz: f64,
}

impl ZeroSkipAccelerator {
    /// A NullHop-class configuration: 128 lanes at 500 MHz, activation
    /// skipping, unstructured (30 % memory penalty).
    pub fn new(energy: EnergyModel) -> Self {
        ZeroSkipAccelerator {
            energy,
            skip_activations: true,
            skip_weights: false,
            structured: false,
            irregular_penalty: 1.3,
            lanes: 128,
            clock_hz: 500e6,
        }
    }

    /// Returns a copy that also skips zero weights (Eyeriss-v2 style).
    pub fn with_weight_skipping(mut self) -> Self {
        self.skip_weights = true;
        self
    }

    /// Returns a copy with structured sparsity (S2TA style): deterministic
    /// access restored.
    pub fn with_structured_sparsity(mut self) -> Self {
        self.structured = true;
        self
    }

    /// Prices a workload.
    ///
    /// * `weight_sparsity` — fraction of zero weights (from pruning).
    /// * `compression_ratio` — feature-map compression achieved in storage
    ///   (≥ 1; from `evlab_tensor::sparse`).
    /// * `weight_words` — weight footprint (decides the memory level).
    pub fn price(
        &self,
        ops: &OpCount,
        weight_sparsity: f64,
        compression_ratio: f64,
        weight_words: usize,
    ) -> CostReport {
        assert!((0.0..=1.0).contains(&weight_sparsity), "sparsity in [0,1]");
        assert!(compression_ratio > 0.0, "compression ratio must be positive");
        let executed = if self.skip_activations {
            ops.effective_macs as f64
        } else {
            ops.macs as f64
        } * if self.skip_weights {
            1.0 - weight_sparsity
        } else {
            1.0
        };
        let compute_pj = executed * (self.energy.add_pj + self.energy.mult_pj)
            + ops.comparisons as f64 * self.energy.compare_pj;
        // Memory: weight + activation fetch per executed MAC, activations
        // compressed in storage; irregular access penalty unless
        // structured.
        let penalty = if self.structured {
            1.0
        } else {
            self.irregular_penalty
        };
        let access_pj = self.energy.access_energy_for_footprint(weight_words);
        let accesses = executed * 2.0 / compression_ratio.max(1.0);
        let memory_pj = accesses * access_pj * penalty;
        let cycles = executed / self.lanes as f64
            // Skipping logic overhead: one detect cycle per 8 nominal MACs.
            + ops.macs as f64 / (8.0 * self.lanes as f64);
        // Weight storage shrinks only when the accelerator actually keeps
        // the weights in compressed (skip-indexed) form.
        let effective_weight_words = if self.skip_weights {
            (weight_words as f64 * (1.0 - weight_sparsity)) as u64
        } else {
            weight_words as u64
        };
        if obs::enabled() {
            obs::counter_add("hw.zeroskip.reports", 1);
            obs::counter_add("hw.zeroskip.executed_macs", executed as u64);
            obs::counter_add(
                "hw.zeroskip.skipped_macs",
                (ops.macs as f64 - executed).max(0.0) as u64,
            );
        }
        CostReport {
            compute_pj,
            memory_pj,
            latency_us: cycles / self.clock_hz * 1e6,
            footprint_bytes: effective_weight_words * self.energy.bytes_per_word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_ops(nominal: u64, effective: u64) -> OpCount {
        let mut ops = OpCount::new();
        ops.record_mac(nominal, effective);
        ops
    }

    #[test]
    fn activation_skipping_pays_off_with_sparsity() {
        let accel = ZeroSkipAccelerator::new(EnergyModel::nm45());
        let dense = accel.price(&conv_ops(1_000_000, 1_000_000), 0.0, 1.0, 50_000);
        let sparse = accel.price(&conv_ops(1_000_000, 200_000), 0.0, 3.0, 50_000);
        assert!(sparse.total_pj() < 0.35 * dense.total_pj());
        assert!(sparse.latency_us < dense.latency_us);
    }

    #[test]
    fn weight_skipping_multiplies_the_savings() {
        let base = ZeroSkipAccelerator::new(EnergyModel::nm45());
        let both = base.with_weight_skipping();
        let ops = conv_ops(1_000_000, 500_000);
        let a = base.price(&ops, 0.8, 1.0, 50_000);
        let b = both.price(&ops, 0.8, 1.0, 50_000);
        assert!(b.compute_pj < 0.3 * a.compute_pj);
        assert!(b.footprint_bytes < a.footprint_bytes);
    }

    #[test]
    fn structured_sparsity_removes_the_penalty() {
        let unstructured = ZeroSkipAccelerator::new(EnergyModel::nm45());
        let structured = unstructured.with_structured_sparsity();
        let ops = conv_ops(1_000_000, 300_000);
        let a = unstructured.price(&ops, 0.0, 2.0, 50_000);
        let b = structured.price(&ops, 0.0, 2.0, 50_000);
        assert!((a.memory_pj / b.memory_pj - 1.3).abs() < 1e-9);
        assert_eq!(a.compute_pj, b.compute_pj);
    }

    #[test]
    fn compression_cuts_memory_energy() {
        let accel = ZeroSkipAccelerator::new(EnergyModel::nm45());
        let ops = conv_ops(1_000_000, 400_000);
        let raw = accel.price(&ops, 0.0, 1.0, 50_000);
        let compressed = accel.price(&ops, 0.0, 4.0, 50_000);
        assert!((raw.memory_pj / compressed.memory_pj - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dense_workload_on_zeroskip_vs_systolic() {
        // On a fully dense workload the skipping logic is pure overhead:
        // the systolic array should win on latency per MAC-lane.
        let zs = ZeroSkipAccelerator::new(EnergyModel::nm45());
        let ops = conv_ops(1_000_000, 1_000_000);
        let report = zs.price(&ops, 0.0, 1.0, 50_000);
        let ideal_cycles = 1_000_000.0 / zs.lanes as f64;
        assert!(report.latency_us > ideal_cycles / zs.clock_hz * 1e6);
    }

    #[test]
    #[should_panic(expected = "sparsity in [0,1]")]
    fn invalid_sparsity_panics() {
        let accel = ZeroSkipAccelerator::new(EnergyModel::nm45());
        accel.price(&OpCount::new(), 1.5, 1.0, 100);
    }
}
