//! Per-operation energy constants.
//!
//! Defaults follow the widely used 45 nm numbers (Horowitz, ISSCC 2014),
//! which are also the basis of the paper's reference [40]: a 32-bit
//! floating-point multiply costs ~3.7 pJ against ~0.9 pJ for an add — the
//! "around four times less energy" claim §III-A builds on.


/// Energy model: picojoules per operation / access, at a given word width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Addition energy (pJ).
    pub add_pj: f64,
    /// Multiplication energy (pJ).
    pub mult_pj: f64,
    /// Comparison energy (pJ).
    pub compare_pj: f64,
    /// Register-file / small-buffer access (pJ).
    pub rf_pj: f64,
    /// On-chip SRAM access (pJ), for a ~32 kB bank.
    pub sram_pj: f64,
    /// Large on-chip SRAM / last-level buffer access (pJ), ~1 MB.
    pub large_sram_pj: f64,
    /// Off-chip DRAM access (pJ per word).
    pub dram_pj: f64,
    /// Bytes per word priced by the access constants.
    pub bytes_per_word: u64,
}

impl EnergyModel {
    /// 45 nm, 32-bit words (Horowitz ISSCC 2014).
    pub fn nm45() -> Self {
        EnergyModel {
            add_pj: 0.9,
            mult_pj: 3.7,
            compare_pj: 0.05,
            rf_pj: 0.1,
            sram_pj: 5.0,
            large_sram_pj: 20.0,
            dram_pj: 640.0,
            bytes_per_word: 4,
        }
    }

    /// 45 nm, 8-bit integer words (quantized inference).
    pub fn nm45_int8() -> Self {
        EnergyModel {
            add_pj: 0.03,
            mult_pj: 0.2,
            compare_pj: 0.01,
            rf_pj: 0.03,
            sram_pj: 1.25,
            large_sram_pj: 5.0,
            dram_pj: 160.0,
            bytes_per_word: 1,
        }
    }

    /// Where a working set of `words` 32-bit words physically lives,
    /// returning the per-access energy: register files below 1 K words,
    /// banked SRAM below 256 K words, large SRAM below 4 M words, DRAM
    /// beyond.
    pub fn access_energy_for_footprint(&self, words: usize) -> f64 {
        if words <= 1 << 10 {
            self.rf_pj
        } else if words <= 1 << 18 {
            self.sram_pj
        } else if words <= 1 << 22 {
            self.large_sram_pj
        } else {
            self.dram_pj
        }
    }

    /// Ratio of multiply to add energy (≈ 4 at fp32, the [40] figure).
    pub fn mult_add_ratio(&self) -> f64 {
        self.mult_pj / self.add_pj
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::nm45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mult_is_about_four_times_add() {
        let m = EnergyModel::nm45();
        let ratio = m.mult_add_ratio();
        assert!((3.5..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn memory_hierarchy_is_monotone() {
        let m = EnergyModel::nm45();
        assert!(m.rf_pj < m.sram_pj);
        assert!(m.sram_pj < m.large_sram_pj);
        assert!(m.large_sram_pj < m.dram_pj);
    }

    #[test]
    fn footprint_selects_level() {
        let m = EnergyModel::nm45();
        assert_eq!(m.access_energy_for_footprint(100), m.rf_pj);
        assert_eq!(m.access_energy_for_footprint(100_000), m.sram_pj);
        assert_eq!(m.access_energy_for_footprint(2_000_000), m.large_sram_pj);
        assert_eq!(m.access_energy_for_footprint(100_000_000), m.dram_pj);
    }

    #[test]
    fn int8_is_cheaper_than_fp32() {
        let a = EnergyModel::nm45();
        let b = EnergyModel::nm45_int8();
        assert!(b.mult_pj < a.mult_pj);
        assert!(b.sram_pj < a.sram_pj);
    }
}
