//! First-order hardware cost models (paper §III and §V).
//!
//! The paper's hardware arguments are energy-accounting arguments: adds are
//! ~4× cheaper than multiplies [40], memory accesses dominate neuromorphic
//! core energy up to 99 % [42], zero-skipping trades deterministic SRAM
//! access for compute savings [62]–[65], analog SNN cores consume roughly an
//! order of magnitude less power [46]. This crate encodes those published
//! constants into analytical models that *price* the measured operation
//! counts ([`evlab_tensor::OpCount`]) of the three paradigms:
//!
//! * [`energy`] — per-operation and per-access energy constants
//!   (Horowitz-style, 45 nm).
//! * [`report`] — [`CostReport`]: energy breakdown, latency, memory
//!   footprint.
//! * [`snn_core`] — time-multiplexed digital neuromorphic core (clocked or
//!   event-driven update policy) and the analog subthreshold core.
//! * [`systolic`] — systolic PE array (TPU-style): massively parallel,
//!   deterministic access, no zero skipping.
//! * [`zeroskip`] — zero-skipping accelerator (NullHop/Cambricon-X-style)
//!   with optional structured sparsity.
//! * [`gnn_accel`] — gather/aggregate/update GNN accelerator
//!   (EnGN/HyGCN-style) with a datacenter and an edge preset.
//!
//! # Examples
//!
//! ```
//! use evlab_hw::energy::EnergyModel;
//! use evlab_hw::snn_core::{NeuromorphicCore, UpdatePolicy};
//! use evlab_tensor::OpCount;
//!
//! let mut ops = OpCount::new();
//! ops.record_add(10_000);
//! let core = NeuromorphicCore::new(EnergyModel::nm45(), UpdatePolicy::Clocked);
//! let report = core.price(&ops, 1_000, 10_000);
//! assert!(report.memory_fraction() > 0.5, "memory dominates");
//! ```

pub mod energy;
pub mod gnn_accel;
pub mod report;
pub mod snn_core;
pub mod system;
pub mod systolic;
pub mod zeroskip;

pub use energy::EnergyModel;
pub use report::CostReport;
