//! Cost reports produced by the accelerator models.

use std::fmt;
use std::ops::Add;

/// The outcome of pricing a workload on a hardware model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostReport {
    /// Arithmetic (datapath) energy in picojoules.
    pub compute_pj: f64,
    /// Memory-access energy in picojoules.
    pub memory_pj: f64,
    /// Execution latency in microseconds.
    pub latency_us: f64,
    /// Parameter + state footprint in bytes.
    pub footprint_bytes: u64,
}

impl CostReport {
    /// An empty report.
    pub fn new() -> Self {
        CostReport::default()
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.memory_pj
    }

    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() * 1e-6
    }

    /// Fraction of energy spent on memory accesses — the [42] "up to 99 %"
    /// metric. Returns 0 for an empty report.
    pub fn memory_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.memory_pj / total
        }
    }

    /// Mean power in milliwatts given how much wall-clock time the workload
    /// spans (e.g. the event window it processed).
    ///
    /// # Panics
    ///
    /// Panics if `span_us <= 0`.
    pub fn mean_power_mw(&self, span_us: f64) -> f64 {
        assert!(span_us > 0.0, "span must be positive");
        // pJ / us = uW; /1000 -> mW.
        self.total_pj() / span_us / 1000.0
    }
}

impl Add for CostReport {
    type Output = CostReport;
    fn add(self, rhs: CostReport) -> CostReport {
        CostReport {
            compute_pj: self.compute_pj + rhs.compute_pj,
            memory_pj: self.memory_pj + rhs.memory_pj,
            // Sequential composition.
            latency_us: self.latency_us + rhs.latency_us,
            footprint_bytes: self.footprint_bytes.max(rhs.footprint_bytes),
        }
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} uJ ({:.0}% memory), {:.1} us, {} B",
            self.total_uj(),
            self.memory_fraction() * 100.0,
            self.latency_us,
            self.footprint_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let r = CostReport {
            compute_pj: 1.0,
            memory_pj: 99.0,
            latency_us: 10.0,
            footprint_bytes: 1024,
        };
        assert_eq!(r.total_pj(), 100.0);
        assert!((r.memory_fraction() - 0.99).abs() < 1e-12);
        assert!((r.mean_power_mw(100.0) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = CostReport::new();
        assert_eq!(r.memory_fraction(), 0.0);
        assert_eq!(r.total_pj(), 0.0);
    }

    #[test]
    fn addition_composes_sequentially() {
        let a = CostReport {
            compute_pj: 1.0,
            memory_pj: 2.0,
            latency_us: 3.0,
            footprint_bytes: 100,
        };
        let b = CostReport {
            compute_pj: 10.0,
            memory_pj: 20.0,
            latency_us: 30.0,
            footprint_bytes: 50,
        };
        let c = a + b;
        assert_eq!(c.total_pj(), 33.0);
        assert_eq!(c.latency_us, 33.0);
        assert_eq!(c.footprint_bytes, 100, "footprints do not add");
    }

    #[test]
    fn display_is_informative() {
        let r = CostReport {
            compute_pj: 5e5,
            memory_pj: 5e5,
            latency_us: 1.0,
            footprint_bytes: 64,
        };
        let s = r.to_string();
        assert!(s.contains("uJ") && s.contains("%"));
    }
}
