//! Neuromorphic SNN core models (paper §III-A).
//!
//! * [`NeuromorphicCore`] — a digital time-multiplexed core: neuron and
//!   synapse state in SRAM, ALUs evaluating the state equations. Memory
//!   traffic is priced through the [`EnergyModel`] hierarchy and dominates
//!   total energy — the [42] observation that makes the "adds are cheaper
//!   than mults" advantage "largely irrelevant". A [`UpdatePolicy`]
//!   distinguishes the clocked scan from per-event updates (which touch the
//!   timestamp memory and pay more traffic per update, [44]).
//! * [`AnalogCore`] — a subthreshold analog core ([Moradi et al. DYNAP]):
//!   membrane dynamics evolve in device physics, so state "accesses" are
//!   free; only spike communication and the bias/weight DACs burn energy,
//!   yielding the order-of-magnitude power advantage of §V — at the cost of
//!   mismatch noise.

use crate::energy::EnergyModel;
use crate::report::CostReport;
use evlab_tensor::OpCount;
use evlab_util::obs;

/// How the digital core updates neuron state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Clocked: every neuron's membrane is scanned and decayed every
    /// timestep (the counters already include that traffic).
    Clocked,
    /// Event-driven: decay on demand; every synaptic update also reads and
    /// rewrites a per-neuron timestamp (the counters already include that
    /// traffic too).
    EventDriven,
}

/// A digital time-multiplexed neuromorphic core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuromorphicCore {
    energy: EnergyModel,
    policy: UpdatePolicy,
    /// Synaptic operations the core retires per second.
    throughput_sops: f64,
}

impl NeuromorphicCore {
    /// Creates a core with a default 1 GSOP/s datapath.
    pub fn new(energy: EnergyModel, policy: UpdatePolicy) -> Self {
        NeuromorphicCore {
            energy,
            policy,
            throughput_sops: 1e9,
        }
    }

    /// Returns a copy with a different synaptic-op throughput.
    ///
    /// # Panics
    ///
    /// Panics if `sops <= 0`.
    pub fn with_throughput(mut self, sops: f64) -> Self {
        assert!(sops > 0.0, "throughput must be positive");
        self.throughput_sops = sops;
        self
    }

    /// The update policy.
    pub fn policy(&self) -> UpdatePolicy {
        self.policy
    }

    /// Prices a measured operation count. `state_words` is the neuron-state
    /// footprint, `weight_words` the synaptic memory; both decide which
    /// memory level serves the accesses.
    pub fn price(&self, ops: &OpCount, state_words: usize, weight_words: usize) -> CostReport {
        let compute_pj = ops.adds as f64 * self.energy.add_pj
            + ops.mults as f64 * self.energy.mult_pj
            + (ops.macs as f64) * (self.energy.add_pj + self.energy.mult_pj)
            + ops.comparisons as f64 * self.energy.compare_pj;
        let access_pj = self
            .energy
            .access_energy_for_footprint(state_words + weight_words);
        let memory_pj = ops.mem_accesses() as f64 * access_pj;
        let total_ops = ops.total_arithmetic().max(1);
        let latency_us = total_ops as f64 / self.throughput_sops * 1e6;
        if obs::enabled() {
            obs::counter_add("hw.snn_core.reports", 1);
            obs::counter_add("hw.snn_core.priced_ops", total_ops);
        }
        CostReport {
            compute_pj,
            memory_pj,
            latency_us,
            footprint_bytes: (state_words + weight_words) as u64 * self.energy.bytes_per_word,
        }
    }
}

/// An analog subthreshold neuromorphic core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogCore {
    energy: EnergyModel,
    /// Energy per spike event routed through the AER fabric (pJ).
    spike_routing_pj: f64,
    /// Static bias power per neuron (pW equivalent folded into per-op
    /// cost).
    per_synapse_event_pj: f64,
    /// Relative standard deviation of effective weights due to transistor
    /// mismatch — the robustness limit §III-A ends on.
    pub mismatch_sigma: f64,
}

impl AnalogCore {
    /// Creates a DYNAP-class analog core: ~30× lower energy per synaptic
    /// event than the digital datapath + memory path, 5 % mismatch.
    pub fn new(energy: EnergyModel) -> Self {
        AnalogCore {
            energy,
            spike_routing_pj: 0.4,
            per_synapse_event_pj: 0.1,
            mismatch_sigma: 0.05,
        }
    }

    /// Prices a measured operation count. Only additions (synaptic events)
    /// and comparisons (spike generation) map to physical events; decay
    /// multiplies are free (capacitor physics), and there is no state
    /// memory traffic.
    pub fn price(&self, ops: &OpCount, neurons: usize) -> CostReport {
        let compute_pj = ops.adds as f64 * self.per_synapse_event_pj
            + ops.comparisons as f64 * self.spike_routing_pj;
        if obs::enabled() {
            obs::counter_add("hw.analog_core.reports", 1);
        }
        CostReport {
            compute_pj,
            memory_pj: 0.0,
            // Continuous-time: latency is the physical time constant, not a
            // clock; report the AER routing serialization only.
            latency_us: ops.comparisons as f64 / 1e9 * 1e6,
            footprint_bytes: neurons as u64 * self.energy.bytes_per_word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical_snn_ops() -> OpCount {
        // A typical inference: sparse synaptic adds, clocked decay mults.
        let mut ops = OpCount::new();
        ops.record_add(50_000); // synaptic accumulation
        ops.record_mult(20_000); // clocked decay
        ops.record_compare(20_000);
        ops
    }

    #[test]
    fn memory_dominates_digital_core_energy() {
        let core = NeuromorphicCore::new(EnergyModel::nm45(), UpdatePolicy::Clocked);
        // Realistic footprint: 100k synapses + 1k neurons -> SRAM.
        let report = core.price(&typical_snn_ops(), 1_000, 100_000);
        assert!(
            report.memory_fraction() > 0.5,
            "memory fraction {}",
            report.memory_fraction()
        );
    }

    #[test]
    fn memory_fraction_approaches_published_extreme_for_big_cores() {
        // With state spilling to large SRAM the fraction climbs toward the
        // 99% of [42].
        let core = NeuromorphicCore::new(EnergyModel::nm45(), UpdatePolicy::Clocked);
        let report = core.price(&typical_snn_ops(), 1_000_000, 3_000_000);
        assert!(
            report.memory_fraction() > 0.9,
            "memory fraction {}",
            report.memory_fraction()
        );
    }

    #[test]
    fn analog_core_is_order_of_magnitude_cheaper() {
        let ops = typical_snn_ops();
        let digital = NeuromorphicCore::new(EnergyModel::nm45(), UpdatePolicy::Clocked)
            .price(&ops, 1_000, 100_000);
        let analog = AnalogCore::new(EnergyModel::nm45()).price(&ops, 1_000);
        let ratio = digital.total_pj() / analog.total_pj();
        assert!(
            ratio > 8.0,
            "analog should be ~an order of magnitude cheaper, ratio {ratio}"
        );
    }

    #[test]
    fn latency_scales_with_ops() {
        let core = NeuromorphicCore::new(EnergyModel::nm45(), UpdatePolicy::Clocked);
        let small = core.price(&typical_snn_ops(), 100, 1_000);
        let mut big_ops = typical_snn_ops();
        big_ops.record_add(1_000_000);
        let big = core.price(&big_ops, 100, 1_000);
        assert!(big.latency_us > small.latency_us);
    }

    #[test]
    fn mismatch_is_exposed() {
        let core = AnalogCore::new(EnergyModel::nm45());
        assert!(core.mismatch_sigma > 0.0);
    }
}
