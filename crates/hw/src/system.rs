//! Whole-system budget for the 3-D integrated smart imager (paper §I).
//!
//! The paper's forward-looking goal is "a multi-layer 3D-integrated smart
//! imager chip whereby the event-camera is tightly integrated with an AI
//! co-processor that can operate very effectively near the data-generating
//! pixels" ([Vivet et al. 2019], [Bouvier et al. 2021]). This module
//! composes the sensor, the event link (3-D via vs off-chip SerDes) and an
//! accelerator [`CostReport`] into an end-to-end power and latency budget,
//! making the in-sensor-processing argument quantitative.

use crate::report::CostReport;

/// How the sensor talks to the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Hybrid-bonded 3-D vias: femtojoule-class, sub-µs.
    ThreeDStacked,
    /// Off-chip SerDes / MIPI-style link: picojoule-per-bit, µs-class.
    OffChip,
}

/// System-integration parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartImagerBudget {
    /// Static sensor power (pixel front-ends + biasing), in microwatts.
    pub sensor_static_uw: f64,
    /// Energy to generate and arbitrate one event on-die, in picojoules.
    pub event_energy_pj: f64,
    /// Link energy per transferred bit, in picojoules.
    pub link_pj_per_bit: f64,
    /// Link serialization latency per event, in microseconds.
    pub link_latency_us: f64,
    /// Bits per transferred event.
    pub bits_per_event: u32,
    /// Link type (for reporting).
    pub link: LinkKind,
}

impl SmartImagerBudget {
    /// The 3-D stacked in-sensor configuration: ~0.05 pJ/bit vias, 0.1 µs.
    pub fn three_d_stacked() -> Self {
        SmartImagerBudget {
            sensor_static_uw: 500.0, // mid-size array, hundreds of µW (§I)
            event_energy_pj: 50.0,
            link_pj_per_bit: 0.05,
            link_latency_us: 0.1,
            bits_per_event: 64,
            link: LinkKind::ThreeDStacked,
        }
    }

    /// The conventional off-chip configuration: ~5 pJ/bit SerDes, 2 µs.
    pub fn off_chip() -> Self {
        SmartImagerBudget {
            sensor_static_uw: 500.0,
            event_energy_pj: 50.0,
            link_pj_per_bit: 5.0,
            link_latency_us: 2.0,
            bits_per_event: 64,
            link: LinkKind::OffChip,
        }
    }

    /// Evaluates the budget at a sustained event rate and decision rate.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative.
    pub fn evaluate(
        &self,
        event_rate_hz: f64,
        inference: &CostReport,
        inferences_per_s: f64,
    ) -> SystemPower {
        assert!(event_rate_hz >= 0.0, "negative event rate");
        assert!(inferences_per_s >= 0.0, "negative decision rate");
        let sensor_mw = self.sensor_static_uw / 1000.0
            + event_rate_hz * self.event_energy_pj * 1e-9; // pJ·Hz = 1e-12 W = 1e-9 mW
        let link_mw =
            event_rate_hz * self.bits_per_event as f64 * self.link_pj_per_bit * 1e-9;
        let compute_mw = inference.compute_pj * inferences_per_s * 1e-9;
        let memory_mw = inference.memory_pj * inferences_per_s * 1e-9;
        SystemPower {
            sensor_mw,
            link_mw,
            compute_mw,
            memory_mw,
            decision_latency_us: self.link_latency_us + inference.latency_us,
        }
    }
}

/// An end-to-end power and latency breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemPower {
    /// Sensor power (static + per-event), milliwatts.
    pub sensor_mw: f64,
    /// Event-link power, milliwatts.
    pub link_mw: f64,
    /// Accelerator datapath power, milliwatts.
    pub compute_mw: f64,
    /// Accelerator memory power, milliwatts.
    pub memory_mw: f64,
    /// Event-to-decision latency, microseconds.
    pub decision_latency_us: f64,
}

impl SystemPower {
    /// Total system power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.sensor_mw + self.link_mw + self.compute_mw + self.memory_mw
    }

    /// Fraction of power spent moving events rather than computing.
    pub fn transport_fraction(&self) -> f64 {
        let total = self.total_mw();
        if total == 0.0 {
            0.0
        } else {
            self.link_mw / total
        }
    }
}

impl std::fmt::Display for SystemPower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} mW (sensor {:.2}, link {:.3}, compute {:.2}, memory {:.2}), {:.1} us to decision",
            self.total_mw(),
            self.sensor_mw,
            self.link_mw,
            self.compute_mw,
            self.memory_mw,
            self.decision_latency_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inference() -> CostReport {
        CostReport {
            compute_pj: 2e5,
            memory_pj: 8e5,
            latency_us: 20.0,
            footprint_bytes: 100_000,
        }
    }

    #[test]
    fn stacking_cuts_link_power_and_latency() {
        let rate = 10e6; // 10 Meps
        let stacked = SmartImagerBudget::three_d_stacked().evaluate(rate, &inference(), 100.0);
        let off = SmartImagerBudget::off_chip().evaluate(rate, &inference(), 100.0);
        assert!(
            off.link_mw > 50.0 * stacked.link_mw,
            "link {} vs {}",
            off.link_mw,
            stacked.link_mw
        );
        assert!(off.decision_latency_us > stacked.decision_latency_us);
        // Sensor and compute power are integration-independent.
        assert_eq!(off.sensor_mw, stacked.sensor_mw);
        assert_eq!(off.compute_mw, stacked.compute_mw);
    }

    #[test]
    fn power_is_in_the_published_regime() {
        // §V: accelerators run at "hundreds of milliwatts" under load;
        // sensors at hundreds of µW to tens of mW.
        let budget = SmartImagerBudget::three_d_stacked();
        let busy = budget.evaluate(50e6, &inference(), 1_000.0);
        assert!(busy.total_mw() > 1.0 && busy.total_mw() < 1_000.0, "{}", busy.total_mw());
        let idle = budget.evaluate(10e3, &inference(), 1.0);
        assert!(idle.total_mw() < 1.0, "idle {} mW", idle.total_mw());
    }

    #[test]
    fn transport_fraction_grows_with_rate_off_chip() {
        let budget = SmartImagerBudget::off_chip();
        let slow = budget.evaluate(1e5, &inference(), 10.0);
        let fast = budget.evaluate(1e8, &inference(), 10.0);
        assert!(fast.transport_fraction() > slow.transport_fraction());
        assert!(fast.transport_fraction() > 0.5, "at 100 Meps the link dominates");
    }

    #[test]
    fn display_has_all_components() {
        let s = SmartImagerBudget::three_d_stacked().evaluate(1e6, &inference(), 50.0);
        let txt = s.to_string();
        assert!(txt.contains("sensor") && txt.contains("link") && txt.contains("decision"));
    }
}
