//! Cache-blocked GEMM and im2col convolution kernels.
//!
//! This is the dense compute core of the workspace: a std-only, BLIS-style
//! tiled matrix multiply plus the im2col/col2im lowering that turns
//! [`crate::layer::Conv2d`] into calls onto it. Throughput comes from two
//! independent levers: memory-access structure (packed panels, register
//! tiles) and, for large enough problems, macro-panel parallelism over the
//! `evlab_util::par` kernel pool.
//!
//! # Panel partitioning
//!
//! The parallel path partitions the *output* C into a fixed 2-D grid of
//! `MC`-row × [`NBAND`]-column rectangles. The grid depends only on
//! `(m, n)` — never on the thread count — and each rectangle runs the
//! complete serial blocked nest (full ascending-k panel loop) on one pool
//! worker, packing into that worker's thread-local arena
//! ([`crate::scratch::with_worker_scratch`]). Because a rectangle owns
//! every k-update of its output elements, spatial partitioning cannot
//! perturb any per-element accumulation chain: results are bitwise
//! identical at every `EVLAB_THREADS` value, and identical to the serial
//! path. Problems below [`PAR_MIN_MACS`] (or with a single-rectangle
//! grid) skip dispatch entirely and use the caller's scratch.
//!
//! # Summation-order contract
//!
//! Every kernel in this module obeys one rule: **for each output element,
//! the k-dimension products are accumulated in ascending `k` order into a
//! single `f32` accumulator**, exactly as the textbook triple loop would.
//! Blocking is only allowed to reorder *which output element is visited
//! when*, never the per-element reduction sequence. Concretely:
//!
//! - the k-loop is panelled (`KC` at a time) but panels are visited in
//!   ascending order and each accumulates into the same output location,
//!   so the per-element chain `((init + a·b)₀ + a·b)₁ …` is the sequential
//!   ascending-k chain regardless of panel size;
//! - the microkernel keeps one scalar accumulator per output element of
//!   its `MR × NR` tile — there is no split/recombine of partial sums.
//!
//! Floating-point addition is not associative, so this contract is what
//! makes the blocked kernels **bit-identical** to the naive loop nests
//! (and therefore to the pre-blocking checksums pinned in
//! `BENCH_hotpaths.json`, and to the 1-vs-4-thread bit-identity contract
//! in `tests/par_equivalence.rs`). One theoretical edge exists: the naive
//! conv nest skips products whose input value is exactly `0.0`, while the
//! GEMM lowering includes them. `acc + (±0.0 · w)` is bitwise `acc` in all
//! cases except `acc == -0.0` with addend `+0.0`; since accumulators start
//! from bias values and `x + y == -0.0` in round-to-nearest requires both
//! operands to be `-0.0`, a `-0.0` accumulator cannot arise from the
//! ascending-k chain unless bias itself is `-0.0` *and* all products so
//! far were `-0.0`. The property tests in `tests/kernel_equivalence.rs`
//! sweep this empirically.

use crate::scratch::{with_worker_scratch, Scratch};
use evlab_util::{obs, par};
use std::sync::atomic::{AtomicU64, Ordering};

/// Microkernel tile rows (output rows per register tile).
pub const MR: usize = 4;
/// Microkernel tile columns (output columns per register tile).
pub const NR: usize = 8;
/// Rows of A packed per L2-resident block.
const MC: usize = 64;
/// k-depth packed per panel (L1-resident strips of A and B).
const KC: usize = 256;
/// Columns of B per outer block.
const NC: usize = 512;
/// Column width of one parallel macro-panel of C (an `NR` multiple). The
/// parallel grid is `ceil(m / MC) × ceil(n / NBAND)` rectangles — a
/// function of the problem shape only, never of the thread count.
pub const NBAND: usize = 64;
/// Minimum `m·n·k` before a GEMM fans out to the kernel pool; below this
/// the dispatch wakeup costs more than the multiply.
const PAR_MIN_MACS: usize = 1 << 17;
/// Minimum `col_rows · pixels` before the im2col lowering fans out.
const IM2COL_PAR_MIN: usize = 1 << 14;

/// `c[m × n] += a[m × k] · b[k × n]` for row-major contiguous operands.
///
/// Accumulates into `c` (callers pre-initialize `c`, e.g. with bias values
/// or zeros). Scratch is used for the packed panels; in steady state the
/// call performs no heap allocation.
///
/// # Panics
///
/// Panics if a slice is shorter than its logical extent.
pub fn gemm_into(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    scratch: &mut Scratch,
) {
    gemm_strided_into(m, n, k, a, k, 1, b, n, 1, c, scratch);
}

/// `c[m × n] += A · B` where A and B are read through explicit row/column
/// strides, so transposed operands need no materialization: `A[i, p] =
/// a[i * a_rs + p * a_cs]`, `B[p, j] = b[p * b_rs + j * b_cs]`. `c` is
/// row-major contiguous.
///
/// Obeys the module-level summation-order contract.
///
/// # Panics
///
/// Panics if a slice is shorter than its logical extent.
#[allow(clippy::too_many_arguments)]
pub fn gemm_strided_into(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
    scratch: &mut Scratch,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    assert!(c.len() >= m * n, "c too short for {m}x{n}");
    obs::counter_add("tensor.gemm.calls", 1);
    let col_bands = n.div_ceil(NBAND);
    let n_chunks = m.div_ceil(MC) * col_bands;
    if n_chunks > 1 && (m * n).saturating_mul(k) >= PAR_MIN_MACS {
        obs::counter_add("tensor.gemm.par_chunks", n_chunks as u64);
        let c_addr = c.as_mut_ptr() as usize;
        par::for_each_chunk(n_chunks, |chunk| {
            let ic0 = (chunk / col_bands) * MC;
            let jc0 = (chunk % col_bands) * NBAND;
            let mcw = MC.min(m - ic0);
            let ncw = NBAND.min(n - jc0);
            with_worker_scratch(|ws| {
                // SAFETY: the chunk rectangles `[ic0, ic0+mcw) ×
                // [jc0, jc0+ncw)` tile C disjointly (one rectangle per
                // chunk index) and `gemm_panel` writes only inside its
                // rectangle, so concurrent chunks never alias; the base
                // pointer stays valid because `c` is mutably borrowed for
                // the whole region.
                unsafe {
                    gemm_panel(
                        mcw,
                        ncw,
                        k,
                        a,
                        a_rs,
                        a_cs,
                        b,
                        b_rs,
                        b_cs,
                        c_addr as *mut f32,
                        n,
                        ic0,
                        jc0,
                        ws,
                    );
                }
            });
        });
        return;
    }
    obs::counter_add("tensor.gemm.serial_calls", 1);
    // SAFETY: the `&mut c` borrow gives exclusive access to the whole
    // `m × n` rectangle.
    unsafe {
        gemm_panel(m, n, k, a, a_rs, a_cs, b, b_rs, b_cs, c.as_mut_ptr(), n, 0, 0, scratch);
    }
}

/// Runs the full blocked nest over the C rectangle
/// `[ic0, ic0 + mcw) × [jc0, jc0 + ncw)` of an `ldc`-strided row-major
/// output. The k loop always covers `0..k` in ascending `KC` panels, so
/// each output element's accumulation chain is the sequential ascending-k
/// chain regardless of how C was partitioned into rectangles — this is
/// what makes the parallel grid bit-identical to the serial nest.
///
/// # Safety
///
/// `c` must be valid for exclusive reads and writes at every offset
/// `(ic0 + i) * ldc + jc0 + j` with `i < mcw`, `j < ncw`, and `a`/`b`
/// must cover the strided extents implied by `(mcw + ic0, ncw + jc0, k)`.
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_panel(
    mcw: usize,
    ncw: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: *mut f32,
    ldc: usize,
    ic0: usize,
    jc0: usize,
    scratch: &mut Scratch,
) {
    // bp is taken first and put back last (LIFO against the arena), so the
    // capacity-fit pool re-pairs each request with the same buffer every
    // call — zero allocations once warm.
    let mut bp = scratch.take_buf(NC.min(ncw).div_ceil(NR) * NR * KC.min(k));
    let mut ap = scratch.take_buf(MC.min(mcw).div_ceil(MR) * MR * KC.min(k));
    for jc in (0..ncw).step_by(NC) {
        let nc = NC.min(ncw - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(kc, nc, b, b_rs, b_cs, pc, jc0 + jc, &mut bp);
            for ic in (0..mcw).step_by(MC) {
                let mc = MC.min(mcw - ic);
                pack_a(mc, kc, a, a_rs, a_cs, ic0 + ic, pc, &mut ap);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let b_strip = &bp[(jr / NR) * NR * kc..][..NR * kc];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let a_strip = &ap[(ir / MR) * MR * kc..][..MR * kc];
                        // SAFETY: the tile origin and its `mr × nr` extent
                        // stay inside this panel's rectangle, which the
                        // caller owns exclusively.
                        unsafe {
                            microkernel(
                                kc,
                                a_strip,
                                b_strip,
                                c.add((ic0 + ic + ir) * ldc + jc0 + jc + jr),
                                ldc,
                                mr,
                                nr,
                            );
                        }
                    }
                }
            }
        }
    }
    scratch.put_buf(ap);
    scratch.put_buf(bp);
}

/// Packs an `mc × kc` block of A into MR-wide column-major strips, zero
/// padding the tail strip so the microkernel always sees full MR rows.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    mc: usize,
    kc: usize,
    a: &[f32],
    rs: usize,
    cs: usize,
    row0: usize,
    col0: usize,
    ap: &mut [f32],
) {
    let mut w = 0;
    for ir in (0..mc).step_by(MR) {
        for p in 0..kc {
            for i in 0..MR {
                ap[w] = if ir + i < mc {
                    a[(row0 + ir + i) * rs + (col0 + p) * cs]
                } else {
                    0.0
                };
                w += 1;
            }
        }
    }
}

/// Packs a `kc × nc` block of B into NR-wide row-major strips, zero padding
/// the tail strip.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    kc: usize,
    nc: usize,
    b: &[f32],
    rs: usize,
    cs: usize,
    row0: usize,
    col0: usize,
    bp: &mut [f32],
) {
    let mut w = 0;
    for jr in (0..nc).step_by(NR) {
        for p in 0..kc {
            for j in 0..NR {
                bp[w] = if jr + j < nc {
                    b[(row0 + p) * rs + (col0 + jr + j) * cs]
                } else {
                    0.0
                };
                w += 1;
            }
        }
    }
}

/// The `MR × NR` register-tile microkernel: loads the live `mr × nr`
/// sub-tile of C, accumulates `kc` rank-1 updates in ascending k into the
/// per-element accumulators, and stores the live sub-tile back. Padded
/// lanes compute garbage that is never stored. C is addressed through a
/// raw tile-origin pointer so that concurrent macro-panels of one output
/// never materialize overlapping `&mut` slices.
///
/// # Safety
///
/// `c` must be valid for exclusive reads and writes at every offset
/// `i * ldc + j` with `i < mr`, `j < nr`.
unsafe fn microkernel(
    kc: usize,
    a_strip: &[f32],
    b_strip: &[f32],
    c: *mut f32,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate().take(mr) {
        for (j, v) in row.iter_mut().enumerate().take(nr) {
            // SAFETY: i < mr and j < nr, in the caller's guaranteed range.
            *v = unsafe { *c.add(i * ldc + j) };
        }
    }
    for (av, bv) in a_strip
        .chunks_exact(MR)
        .zip(b_strip.chunks_exact(NR))
        .take(kc)
    {
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i][j] += ai * bv[j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(mr) {
        for (j, v) in row.iter().enumerate().take(nr) {
            // SAFETY: i < mr and j < nr, in the caller's guaranteed range.
            unsafe { *c.add(i * ldc + j) = *v };
        }
    }
}

/// Reference triple loop with the same summation-order contract: one
/// accumulator per output element, k ascending. Used by the equivalence
/// tests and the `gemm_naive` hotpaths workload; any bitwise divergence
/// from [`gemm_strided_into`] is a kernel bug.
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive_into(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                acc += a[i * a_rs + p * a_cs] * b[p * b_rs + j * b_cs];
            }
            c[i * n + j] = acc;
        }
    }
}

/// `c[m] += a[m × k] · x[k]` (row-major A), with `c` pre-initialized by
/// the caller (e.g. to the bias). Per-row accumulation is the ascending-k
/// chain, bit-identical to the naive dot product; four rows are processed
/// together purely for instruction-level parallelism.
///
/// # Panics
///
/// Panics if a slice is shorter than its logical extent.
pub fn matvec_into(m: usize, k: usize, a: &[f32], x: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k && x.len() >= k && c.len() >= m);
    let mut i = 0;
    while i + 4 <= m {
        let r0 = &a[i * k..(i + 1) * k];
        let r1 = &a[(i + 1) * k..(i + 2) * k];
        let r2 = &a[(i + 2) * k..(i + 3) * k];
        let r3 = &a[(i + 3) * k..(i + 4) * k];
        let (mut a0, mut a1, mut a2, mut a3) = (c[i], c[i + 1], c[i + 2], c[i + 3]);
        for p in 0..k {
            let xv = x[p];
            a0 += r0[p] * xv;
            a1 += r1[p] * xv;
            a2 += r2[p] * xv;
            a3 += r3[p] * xv;
        }
        c[i] = a0;
        c[i + 1] = a1;
        c[i + 2] = a2;
        c[i + 3] = a3;
        i += 4;
    }
    while i < m {
        let row = &a[i * k..(i + 1) * k];
        let mut acc = c[i];
        for p in 0..k {
            acc += row[p] * x[p];
        }
        c[i] = acc;
        i += 1;
    }
}

/// Geometry of a 2-D convolution over a `[C, H, W]` input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (same in both axes).
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
}

impl ConvShape {
    /// Output `(height, width)`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input or stride is 0.
    pub fn out_hw(&self) -> (usize, usize) {
        assert!(self.stride > 0, "stride must be positive");
        assert!(
            self.in_h + 2 * self.padding >= self.kernel
                && self.in_w + 2 * self.padding >= self.kernel,
            "kernel larger than padded input"
        );
        (
            (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1,
            (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1,
        )
    }

    /// Rows of the im2col matrix: `C · K · K`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Output pixels per channel: `oh · ow`.
    pub fn out_pixels(&self) -> usize {
        let (oh, ow) = self.out_hw();
        oh * ow
    }
}

/// Fills one im2col row `t = (ic·K + ky)·K + kx` (all `pixels` output
/// positions for one kernel tap) and returns its non-zero count. Each row
/// is an independent, disjoint slice of the col matrix — the unit of
/// parallelism in [`im2col`].
fn im2col_row(s: &ConvShape, x: &[f32], t: usize, row: &mut [f32]) -> u64 {
    let (oh, ow) = s.out_hw();
    let (h, w, k, st) = (s.in_h, s.in_w, s.kernel, s.stride);
    let p_off = s.padding as isize;
    let (ic, rem) = (t / (k * k), t % (k * k));
    let (ky, kx) = (rem / k, rem % k);
    for oy in 0..oh {
        let iy = (oy * st) as isize + ky as isize - p_off;
        let out_row = &mut row[oy * ow..(oy + 1) * ow];
        if iy < 0 || iy >= h as isize {
            out_row.fill(0.0);
            continue;
        }
        let in_row = &x[(ic * h + iy as usize) * w..(ic * h + iy as usize + 1) * w];
        if st == 1 {
            // ix = ox + ix0 is contiguous: left pad, copy, right pad.
            let ix0 = kx as isize - p_off;
            let lo = (-ix0).clamp(0, ow as isize) as usize;
            let hi = (w as isize - ix0).clamp(0, ow as isize) as usize;
            out_row[..lo].fill(0.0);
            out_row[hi..].fill(0.0);
            if lo < hi {
                let src0 = (lo as isize + ix0) as usize;
                out_row[lo..hi].copy_from_slice(&in_row[src0..src0 + (hi - lo)]);
            }
        } else {
            for (ox, slot) in out_row.iter_mut().enumerate() {
                let ix = (ox * st) as isize + kx as isize - p_off;
                *slot = if ix < 0 || ix >= w as isize {
                    0.0
                } else {
                    in_row[ix as usize]
                };
            }
        }
    }
    row.iter().filter(|&&v| v != 0.0).count() as u64
}

/// Expands `x` (`[C, H, W]`) into the im2col matrix `col[t, p]` with
/// `t = (ic·K + ky)·K + kx` and `p = oy·ow + ox`, zero-filling padded
/// taps, and returns `nnz(col)`. Row index `t` ascending is exactly the
/// naive nest's `(ic, ky, kx)` accumulation order, which is what lets the
/// GEMM keep the summation-order contract.
///
/// Large lowerings fan the `t` rows out over the kernel pool: each row is
/// a disjoint contiguous slice, and the nnz total is an integer sum —
/// both invariant under the thread count.
fn im2col(s: &ConvShape, x: &[f32], col: &mut [f32]) -> u64 {
    let pixels = s.out_pixels();
    let t_rows = s.col_rows();
    if t_rows * pixels < IM2COL_PAR_MIN {
        let mut nnz = 0u64;
        for (t, row) in col.chunks_exact_mut(pixels).enumerate().take(t_rows) {
            nnz += im2col_row(s, x, t, row);
        }
        return nnz;
    }
    obs::counter_add("tensor.conv.im2col_chunks", t_rows as u64);
    let nnz = AtomicU64::new(0);
    let col_addr = col.as_mut_ptr() as usize;
    par::for_each_chunk(t_rows, |t| {
        // SAFETY: row `t` is the disjoint slice `col[t*pixels..(t+1)*pixels]`
        // (caller asserted `col.len() >= t_rows * pixels`), so concurrent
        // chunks never alias; the base pointer stays valid because `col` is
        // mutably borrowed for the whole region.
        let row = unsafe {
            std::slice::from_raw_parts_mut((col_addr as *mut f32).add(t * pixels), pixels)
        };
        nnz.fetch_add(im2col_row(s, x, t, row), Ordering::Relaxed);
    });
    nnz.into_inner()
}

/// Scatters `dcol[t, p]` back into the input gradient `gi` (`+=`), in
/// ascending `(t, p)` order.
fn col2im_accumulate(s: &ConvShape, dcol: &[f32], gi: &mut [f32]) {
    let (oh, ow) = s.out_hw();
    let (h, w, k, st) = (s.in_h, s.in_w, s.kernel, s.stride);
    let p_off = s.padding as isize;
    let mut t = 0;
    for ic in 0..s.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = &dcol[t * oh * ow..(t + 1) * oh * ow];
                for oy in 0..oh {
                    let iy = (oy * st) as isize + ky as isize - p_off;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * st) as isize + kx as isize - p_off;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        gi[(ic * h + iy as usize) * w + ix as usize] += row[oy * ow + ox];
                    }
                }
                t += 1;
            }
        }
    }
}

/// Blocked conv2d forward: `out[o, p] = bias[o] + Σ_t w[o, t] · col[t, p]`
/// via im2col + [`gemm_into`]. Writes the full `[O, oh, ow]` output into
/// `out` (overwritten, not accumulated) and returns the effective MAC
/// count, i.e. `nnz(col) · out_channels` — the same zero-skipping count
/// the naive nest reports.
///
/// # Panics
///
/// Panics if any slice is shorter than its logical extent.
pub fn conv2d_forward(
    s: &ConvShape,
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    out: &mut [f32],
    scratch: &mut Scratch,
) -> u64 {
    let t_rows = s.col_rows();
    let pixels = s.out_pixels();
    assert!(x.len() >= s.in_channels * s.in_h * s.in_w);
    assert!(w.len() >= s.out_channels * t_rows && bias.len() >= s.out_channels);
    assert!(out.len() >= s.out_channels * pixels);
    obs::counter_add("tensor.conv.forward", 1);
    let mut col = scratch.take_buf(t_rows * pixels);
    let nnz = im2col(s, x, &mut col);
    for (o, row) in out.chunks_exact_mut(pixels).enumerate().take(s.out_channels) {
        row.fill(bias[o]);
    }
    gemm_into(s.out_channels, pixels, t_rows, w, &col, out, scratch);
    scratch.put_buf(col);
    nnz * s.out_channels as u64
}

/// Reference conv2d forward: the pre-blocking naive loop nest
/// (`oc → oy → ox`, inner `ic → ky → kx`, zero-input taps skipped). Must
/// be bit-identical to [`conv2d_forward`]; kept as the equivalence-test
/// oracle and the `conv_fwd_naive` hotpaths baseline.
pub fn conv2d_forward_naive(
    s: &ConvShape,
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    out: &mut [f32],
) -> u64 {
    let (oh, ow) = s.out_hw();
    let (h, wid, k, st) = (s.in_h, s.in_w, s.kernel, s.stride);
    let p = s.padding as isize;
    let mut effective = 0u64;
    for oc in 0..s.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias[oc];
                for ic in 0..s.in_channels {
                    for ky in 0..k {
                        let iy = (oy * st) as isize + ky as isize - p;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * st) as isize + kx as isize - p;
                            if ix < 0 || ix >= wid as isize {
                                continue;
                            }
                            let xv = x[(ic * h + iy as usize) * wid + ix as usize];
                            if xv != 0.0 {
                                effective += 1;
                                let wv = w[((oc * s.in_channels + ic) * k + ky) * k + kx];
                                acc += xv * wv;
                            }
                        }
                    }
                }
                out[(oc * oh + oy) * ow + ox] = acc;
            }
        }
    }
    effective
}

/// Blocked conv2d backward. Accumulates (all `+=`):
///
/// - `gb[o] += Σ_p g[o, p]` — p ascending per output channel;
/// - `gw[o, t] += Σ_p g[o, p] · col[t, p]` — p ascending per element
///   (`G · Colᵀ` through [`gemm_strided_into`]);
/// - `gi += col2im(Wᵀ · G)` — each `dcol[t, p]` is the ascending-o chain
///   `Σ_o w[o, t] · g[o, p]`, scattered in ascending `(t, p)` order.
///
/// The grad-input order differs from the historical interleaved nest
/// (which looped `oc` outermost, interleaving `gi`/`gw` updates); the
/// spec above is the contract, and [`conv2d_backward_naive`] is its loop
/// oracle.
///
/// # Panics
///
/// Panics if any slice is shorter than its logical extent.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward(
    s: &ConvShape,
    x: &[f32],
    w: &[f32],
    g: &[f32],
    gi: &mut [f32],
    gw: &mut [f32],
    gb: &mut [f32],
    scratch: &mut Scratch,
) {
    let t_rows = s.col_rows();
    let pixels = s.out_pixels();
    assert!(g.len() >= s.out_channels * pixels);
    assert!(gi.len() >= s.in_channels * s.in_h * s.in_w);
    assert!(gw.len() >= s.out_channels * t_rows && gb.len() >= s.out_channels);
    obs::counter_add("tensor.conv.backward", 1);
    let mut col = scratch.take_buf(t_rows * pixels);
    im2col(s, x, &mut col);
    for (o, grow) in g.chunks_exact(pixels).enumerate().take(s.out_channels) {
        let mut acc = gb[o];
        for &gv in grow {
            acc += gv;
        }
        gb[o] = acc;
    }
    // gw[O × T] += G[O × P] · Col[T × P]ᵀ: B element (p, t) = col[t·P + p].
    gemm_strided_into(
        s.out_channels,
        t_rows,
        pixels,
        g,
        pixels,
        1,
        &col,
        1,
        pixels,
        gw,
        scratch,
    );
    // dcol[T × P] = Wᵀ[T × O] · G[O × P]: A element (t, o) = w[o·T + t].
    let mut dcol = scratch.take_buf(t_rows * pixels);
    gemm_strided_into(
        t_rows,
        pixels,
        s.out_channels,
        w,
        1,
        t_rows,
        g,
        pixels,
        1,
        &mut dcol,
        scratch,
    );
    col2im_accumulate(s, &dcol, gi);
    scratch.put_buf(dcol);
    scratch.put_buf(col);
}

/// Loop oracle for [`conv2d_backward`]: implements the same gradient spec
/// (and summation orders) with plain nests and no scratch. Any bitwise
/// divergence from the blocked version is a kernel bug.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_naive(
    s: &ConvShape,
    x: &[f32],
    w: &[f32],
    g: &[f32],
    gi: &mut [f32],
    gw: &mut [f32],
    gb: &mut [f32],
) {
    let (oh, ow) = s.out_hw();
    let (h, wid, k, st) = (s.in_h, s.in_w, s.kernel, s.stride);
    let p_off = s.padding as isize;
    let pixels = oh * ow;
    let t_rows = s.col_rows();
    let col_at = |t: usize, p: usize| -> f32 {
        let (ic, rem) = (t / (k * k), t % (k * k));
        let (ky, kx) = (rem / k, rem % k);
        let (oy, ox) = (p / ow, p % ow);
        let iy = (oy * st) as isize + ky as isize - p_off;
        let ix = (ox * st) as isize + kx as isize - p_off;
        if iy < 0 || iy >= h as isize || ix < 0 || ix >= wid as isize {
            0.0
        } else {
            x[(ic * h + iy as usize) * wid + ix as usize]
        }
    };
    for o in 0..s.out_channels {
        let mut acc = gb[o];
        for p in 0..pixels {
            acc += g[o * pixels + p];
        }
        gb[o] = acc;
    }
    for o in 0..s.out_channels {
        for t in 0..t_rows {
            let mut acc = gw[o * t_rows + t];
            for p in 0..pixels {
                acc += g[o * pixels + p] * col_at(t, p);
            }
            gw[o * t_rows + t] = acc;
        }
    }
    for t in 0..t_rows {
        let (ic, rem) = (t / (k * k), t % (k * k));
        let (ky, kx) = (rem / k, rem % k);
        for p in 0..pixels {
            let (oy, ox) = (p / ow, p % ow);
            let iy = (oy * st) as isize + ky as isize - p_off;
            let ix = (ox * st) as isize + kx as isize - p_off;
            if iy < 0 || iy >= h as isize || ix < 0 || ix >= wid as isize {
                continue;
            }
            let mut d = 0.0f32;
            for o in 0..s.out_channels {
                d += w[o * t_rows + t] * g[o * pixels + p];
            }
            gi[(ic * h + iy as usize) * wid + ix as usize] += d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_util::Rng64;

    fn rand_vec(rng: &mut Rng64, n: usize, zero_frac: f64) -> Vec<f32> {
        (0..n)
            .map(|_| {
                if rng.next_f64() < zero_frac {
                    0.0
                } else {
                    (rng.next_f64() * 2.0 - 1.0) as f32
                }
            })
            .collect()
    }

    #[test]
    fn gemm_matches_naive_bits_across_blocking_edges() {
        let mut rng = Rng64::seed_from_u64(11);
        let mut scratch = Scratch::new();
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 7, 5),
            (MR, NR, 4),
            (MR + 1, NR + 1, KC + 3),
            (MC + 2, 2 * NR + 3, 17),
            (16, 300, 72),
        ] {
            let a = rand_vec(&mut rng, m * k, 0.2);
            let b = rand_vec(&mut rng, k * n, 0.2);
            let init = rand_vec(&mut rng, m * n, 0.0);
            let mut c_blocked = init.clone();
            let mut c_naive = init;
            gemm_into(m, n, k, &a, &b, &mut c_blocked, &mut scratch);
            gemm_naive_into(m, n, k, &a, k, 1, &b, n, 1, &mut c_naive);
            for (i, (x, y)) in c_blocked.iter().zip(&c_naive).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "({m},{n},{k}) element {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn strided_gemm_reads_transposed_operands() {
        let mut rng = Rng64::seed_from_u64(12);
        let mut scratch = Scratch::new();
        let (m, n, k) = (5, 9, 6);
        // A stored transposed (k × m), B stored transposed (n × k).
        let at = rand_vec(&mut rng, k * m, 0.0);
        let bt = rand_vec(&mut rng, n * k, 0.0);
        let mut c = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        gemm_strided_into(m, n, k, &at, 1, m, &bt, 1, k, &mut c, &mut scratch);
        gemm_naive_into(m, n, k, &at, 1, m, &bt, 1, k, &mut c_ref);
        assert_eq!(c, c_ref);
    }

    #[test]
    fn matvec_matches_scalar_loop_bits() {
        let mut rng = Rng64::seed_from_u64(13);
        for &(m, k) in &[(1, 1), (4, 8), (7, 13), (64, 1024)] {
            let a = rand_vec(&mut rng, m * k, 0.1);
            let x = rand_vec(&mut rng, k, 0.3);
            let bias = rand_vec(&mut rng, m, 0.0);
            let mut c = bias.clone();
            matvec_into(m, k, &a, &x, &mut c);
            for i in 0..m {
                let mut acc = bias[i];
                for p in 0..k {
                    acc += a[i * k + p] * x[p];
                }
                assert_eq!(c[i].to_bits(), acc.to_bits(), "row {i} of ({m},{k})");
            }
        }
    }

    #[test]
    fn conv_shape_geometry() {
        let s = ConvShape {
            in_channels: 3,
            out_channels: 4,
            kernel: 3,
            stride: 2,
            padding: 1,
            in_h: 9,
            in_w: 11,
        };
        assert_eq!(s.out_hw(), (5, 6));
        assert_eq!(s.col_rows(), 27);
        assert_eq!(s.out_pixels(), 30);
    }

    #[test]
    fn forward_effective_macs_match_naive_zero_skip_count() {
        let mut rng = Rng64::seed_from_u64(14);
        let s = ConvShape {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_h: 6,
            in_w: 5,
        };
        let x = rand_vec(&mut rng, s.in_channels * s.in_h * s.in_w, 0.5);
        let w = rand_vec(&mut rng, s.out_channels * s.col_rows(), 0.0);
        let b = rand_vec(&mut rng, s.out_channels, 0.0);
        let mut scratch = Scratch::new();
        let mut out = vec![0.0; s.out_channels * s.out_pixels()];
        let mut out_ref = vec![0.0; s.out_channels * s.out_pixels()];
        let eff = conv2d_forward(&s, &x, &w, &b, &mut out, &mut scratch);
        let eff_ref = conv2d_forward_naive(&s, &x, &w, &b, &mut out_ref);
        assert_eq!(eff, eff_ref);
    }
}
