//! The dense `f32` tensor.

use std::error::Error;
use std::fmt;

/// Error for shape-mismatched tensor construction or operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl ShapeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ShapeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl Error for ShapeError {}

impl From<ShapeError> for evlab_util::EvlabError {
    fn from(e: ShapeError) -> Self {
        evlab_util::EvlabError::shape(e)
    }
}

/// A dense, row-major `f32` tensor of arbitrary rank.
///
/// # Examples
///
/// ```
/// use evlab_tensor::tensor::Tensor;
///
/// let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.len(), 6);
/// # Ok::<(), evlab_tensor::tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero dimension; use [`Tensor::try_zeros`]
    /// for untrusted shapes.
    pub fn zeros(shape: &[usize]) -> Self {
        match Self::try_zeros(shape) {
            Ok(t) => t,
            Err(e) => panic!("invalid tensor shape: {e:?}"),
        }
    }

    /// Fallible [`Tensor::zeros`] for untrusted shapes.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shape is empty or has a zero
    /// dimension.
    pub fn try_zeros(shape: &[usize]) -> Result<Self, ShapeError> {
        let len = checked_len(shape)?;
        Ok(Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        })
    }

    /// A tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero dimension; use
    /// [`Tensor::try_filled`] for untrusted shapes.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        match Self::try_filled(shape, value) {
            Ok(t) => t,
            Err(e) => panic!("invalid tensor shape: {e:?}"),
        }
    }

    /// Fallible [`Tensor::filled`] for untrusted shapes.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shape is empty or has a zero
    /// dimension.
    pub fn try_filled(shape: &[usize], value: f32) -> Result<Self, ShapeError> {
        let len = checked_len(shape)?;
        Ok(Tensor {
            shape: shape.to_vec(),
            data: vec![value; len],
        })
    }

    /// Builds a tensor from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shape is invalid or `data.len()` does
    /// not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, ShapeError> {
        let len = checked_len(shape)?;
        if data.len() != len {
            return Err(ShapeError::new(format!(
                "shape {shape:?} needs {len} elements, got {}",
                data.len()
            )));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the flat data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Flat index of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "rank mismatch");
        let mut flat = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(ix < dim, "index {ix} out of bounds for axis {i} (dim {dim})");
            flat = flat * dim + ix;
        }
        flat
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is invalid.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Result<Tensor, ShapeError> {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Elementwise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Tensor scaled by a constant.
    pub fn scaled(&self, k: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|a| a * k).collect(),
        }
    }

    /// In-place scaling.
    pub fn scale_assign(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Sets every element to zero, reusing the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// 2-D matrix product `self (m×k) · other (k×n)`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank-2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[p * n..(p + 1) * n];
                for (j, &b) in row.iter().enumerate() {
                    out[i * n + j] += a * b;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// 2-D transpose.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose needs rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// Index of the maximum element (first occurrence).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Largest element, or -inf for empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Fraction of exactly-zero elements — the sparsity measure used by the
    /// Table I "Computation sparsity" row.
    pub fn zero_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&v| v == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Number of non-zero elements.
    pub fn nonzero_count(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Makes this tensor an exact copy of `src` (shape and data), reusing
    /// the existing allocations whenever capacity suffices. The in-place
    /// counterpart of `clone_from` for hot paths that cache inputs every
    /// step.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&src.shape);
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Capacity of the backing allocation (used by the scratch arena's
    /// capacity-fit reuse).
    pub(crate) fn data_capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Re-shapes this tensor in place to `shape`, zero-filling the data.
    /// Reuses the existing allocations whenever their capacity suffices,
    /// which is what makes arena reuse allocation-free in steady state.
    ///
    /// # Panics
    ///
    /// Panics if the shape is invalid (empty or zero dimension).
    pub(crate) fn reuse(&mut self, shape: &[usize]) {
        let len = match checked_len(shape) {
            Ok(len) => len,
            Err(e) => panic!("invalid tensor shape: {e:?}"),
        };
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.clear();
        self.data.resize(len, 0.0);
    }
}

fn checked_len(shape: &[usize]) -> Result<usize, ShapeError> {
    if shape.is_empty() {
        return Err(ShapeError::new("shape must have at least one dimension"));
    }
    if shape.contains(&0) {
        return Err(ShapeError::new(format!("shape {shape:?} has a zero dimension")));
    }
    Ok(shape.iter().product())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_constructors_reject_bad_shapes_typed() {
        assert!(Tensor::try_zeros(&[2, 3]).is_ok());
        let e = Tensor::try_zeros(&[2, 0]).unwrap_err();
        assert!(e.to_string().contains("zero dimension"));
        assert!(Tensor::try_filled(&[], 1.0).is_err());
        assert!(Tensor::from_vec(&[0], vec![]).is_err());
    }

    #[test]
    fn shape_error_converts_to_evlab_error() {
        let e: evlab_util::EvlabError = Tensor::try_zeros(&[0]).unwrap_err().into();
        assert!(e.to_string().contains("shape error"));
    }

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(&[2, 2, 2], (0..8).map(|i| i as f32).collect()).expect("ok");
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 1, 1]), 7.0);
        assert_eq!(t.at(&[1, 0, 1]), 5.0);
        assert_eq!(t.flat_index(&[1, 0, 1]), 5);
    }

    #[test]
    fn from_vec_rejects_wrong_len() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dim_panics() {
        Tensor::zeros(&[2, 0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).expect("ok");
        let b = Tensor::from_vec(&[3], vec![0.5, 0.5, 0.5]).expect("ok");
        assert_eq!(a.add(&b).as_slice(), &[1.5, 2.5, 3.5]);
        assert_eq!(a.sub(&b).as_slice(), &[0.5, 1.5, 2.5]);
        assert_eq!(a.scaled(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        let mut c = a.clone();
        c.add_scaled(&b, 2.0);
        assert_eq!(c.as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).expect("ok");
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).expect("ok");
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_skips_zero_rows_correctly() {
        let a = Tensor::from_vec(&[1, 3], vec![0.0, 2.0, 0.0]).expect("ok");
        let b = Tensor::from_vec(&[3, 2], vec![1.0, 1.0, 3.0, 4.0, 1.0, 1.0]).expect("ok");
        assert_eq!(a.matmul(&b).as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()).expect("ok");
        let t = a.transposed();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn argmax_and_reductions() {
        let t = Tensor::from_vec(&[4], vec![1.0, 5.0, 5.0, -2.0]).expect("ok");
        assert_eq!(t.argmax(), 1, "first max wins");
        assert_eq!(t.sum(), 9.0);
        assert_eq!(t.max(), 5.0);
    }

    #[test]
    fn sparsity_measures() {
        let t = Tensor::from_vec(&[4], vec![0.0, 1.0, 0.0, 2.0]).expect("ok");
        assert_eq!(t.zero_fraction(), 0.5);
        assert_eq!(t.nonzero_count(), 2);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()).expect("ok");
        let r = t.reshaped(&[3, 2]).expect("ok");
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshaped(&[5]).is_err());
    }

    #[test]
    fn shape_error_display() {
        let e = Tensor::from_vec(&[2], vec![1.0]).unwrap_err();
        assert!(e.to_string().contains("shape error"));
    }
}
