//! Arithmetic and memory-access instrumentation.
//!
//! Every layer in the substrate reports its work into an [`OpCount`]. The
//! counters distinguish multiplications from additions (SNN hardware replaces
//! multiplies with adds — paper §III-A), count *effective* MACs separately
//! from nominal MACs (zero-skipping accelerators only pay for non-zero
//! operands — §III-B), and track word-level memory reads/writes (memory
//! traffic dominates energy in neuromorphic cores — up to 99 % per [42]).

use std::fmt;
use std::ops::{Add, AddAssign};

/// Operation and memory-access counters.
///
/// # Examples
///
/// ```
/// use evlab_tensor::counters::OpCount;
///
/// let mut ops = OpCount::new();
/// ops.record_mac(100, 60); // 100 nominal MACs, 60 with non-zero inputs
/// assert_eq!(ops.total_arithmetic(), 200);
/// assert!((ops.mac_utilization() - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount {
    /// Nominal multiply–accumulate operations (dense equivalent).
    pub macs: u64,
    /// MACs whose activation operand was non-zero (what a zero-skipping
    /// datapath actually executes).
    pub effective_macs: u64,
    /// Standalone multiplications (outside MACs).
    pub mults: u64,
    /// Standalone additions/subtractions (outside MACs). Event-driven SNN
    /// synapse updates land here: they are adds, not MACs.
    pub adds: u64,
    /// Comparisons (thresholding, max-pooling, ReLU tests).
    pub comparisons: u64,
    /// Word reads from state/parameter memory.
    pub mem_reads: u64,
    /// Word writes to state/parameter memory.
    pub mem_writes: u64,
}

impl OpCount {
    /// An all-zero counter.
    pub fn new() -> Self {
        OpCount::default()
    }

    /// Records `nominal` MACs of which `effective` had non-zero activation
    /// operands, plus the associated weight/activation reads and the
    /// accumulator write-back.
    ///
    /// # Panics
    ///
    /// Panics if `effective > nominal`.
    pub fn record_mac(&mut self, nominal: u64, effective: u64) {
        assert!(effective <= nominal, "effective MACs exceed nominal");
        self.macs += nominal;
        self.effective_macs += effective;
        // One weight read + one activation read per effective MAC;
        // accumulators live in registers and are written once per output,
        // which callers account via record_write.
        self.mem_reads += 2 * effective;
    }

    /// Records standalone additions (with one state read + write each, the
    /// pattern of event-driven synaptic accumulation).
    pub fn record_add(&mut self, n: u64) {
        self.adds += n;
        self.mem_reads += n;
        self.mem_writes += n;
    }

    /// Records standalone multiplications.
    pub fn record_mult(&mut self, n: u64) {
        self.mults += n;
        self.mem_reads += n;
    }

    /// Records comparisons (no memory traffic assumed).
    pub fn record_compare(&mut self, n: u64) {
        self.comparisons += n;
    }

    /// Records raw memory reads.
    pub fn record_read(&mut self, n: u64) {
        self.mem_reads += n;
    }

    /// Records raw memory writes.
    pub fn record_write(&mut self, n: u64) {
        self.mem_writes += n;
    }

    /// Total arithmetic operations counting each nominal MAC as one multiply
    /// plus one add.
    pub fn total_arithmetic(&self) -> u64 {
        2 * self.macs + self.mults + self.adds + self.comparisons
    }

    /// Effective arithmetic: each *effective* MAC as two ops, everything
    /// else unchanged — what a sparsity-exploiting datapath executes.
    pub fn effective_arithmetic(&self) -> u64 {
        2 * self.effective_macs + self.mults + self.adds + self.comparisons
    }

    /// Fraction of nominal MACs that were effective (1.0 when no MACs were
    /// recorded).
    pub fn mac_utilization(&self) -> f64 {
        if self.macs == 0 {
            1.0
        } else {
            self.effective_macs as f64 / self.macs as f64
        }
    }

    /// Total memory accesses (reads + writes).
    pub fn mem_accesses(&self) -> u64 {
        self.mem_reads + self.mem_writes
    }

    /// Memory traffic in bytes assuming `bytes_per_word` wide words.
    pub fn mem_bytes(&self, bytes_per_word: u64) -> u64 {
        self.mem_accesses() * bytes_per_word
    }
}

impl Add for OpCount {
    type Output = OpCount;
    fn add(self, rhs: OpCount) -> OpCount {
        OpCount {
            macs: self.macs + rhs.macs,
            effective_macs: self.effective_macs + rhs.effective_macs,
            mults: self.mults + rhs.mults,
            adds: self.adds + rhs.adds,
            comparisons: self.comparisons + rhs.comparisons,
            mem_reads: self.mem_reads + rhs.mem_reads,
            mem_writes: self.mem_writes + rhs.mem_writes,
        }
    }
}

impl AddAssign for OpCount {
    fn add_assign(&mut self, rhs: OpCount) {
        *self = *self + rhs;
    }
}

impl fmt::Display for OpCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "macs={} (eff {}), mults={}, adds={}, cmps={}, reads={}, writes={}",
            self.macs,
            self.effective_macs,
            self.mults,
            self.adds,
            self.comparisons,
            self.mem_reads,
            self.mem_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_recording() {
        let mut ops = OpCount::new();
        ops.record_mac(10, 4);
        assert_eq!(ops.macs, 10);
        assert_eq!(ops.effective_macs, 4);
        assert_eq!(ops.mem_reads, 8);
        assert_eq!(ops.total_arithmetic(), 20);
        assert_eq!(ops.effective_arithmetic(), 8);
        assert!((ops.mac_utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "effective MACs exceed nominal")]
    fn effective_above_nominal_panics() {
        OpCount::new().record_mac(1, 2);
    }

    #[test]
    fn add_recording_touches_memory_twice() {
        let mut ops = OpCount::new();
        ops.record_add(5);
        assert_eq!(ops.adds, 5);
        assert_eq!(ops.mem_reads, 5);
        assert_eq!(ops.mem_writes, 5);
        assert_eq!(ops.mem_accesses(), 10);
        assert_eq!(ops.mem_bytes(4), 40);
    }

    #[test]
    fn counters_sum() {
        let mut a = OpCount::new();
        a.record_mac(10, 10);
        let mut b = OpCount::new();
        b.record_add(3);
        b.record_compare(2);
        let c = a + b;
        assert_eq!(c.macs, 10);
        assert_eq!(c.adds, 3);
        assert_eq!(c.comparisons, 2);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn utilization_defaults_to_one() {
        assert_eq!(OpCount::new().mac_utilization(), 1.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!OpCount::new().to_string().is_empty());
    }
}
