//! Neural-network layers with manual backpropagation.
//!
//! Each layer caches whatever it needs during [`Layer::forward`] and
//! consumes it in [`Layer::backward`]. Gradients accumulate into
//! [`Param::grad`] until the optimizer applies and clears them, so
//! mini-batch accumulation is simply several forward/backward passes before
//! one optimizer step.

use crate::counters::OpCount;
use crate::gemm::{self, ConvShape};
use crate::init::he_normal;
use crate::scratch::Scratch;
use crate::tensor::Tensor;
use evlab_util::Rng64;

/// Copies `input` into a cached slot, reusing the previous cache tensor's
/// allocation when present, so steady-state forwards do not allocate.
fn cache_input(slot: &mut Option<Tensor>, input: &Tensor) {
    match slot {
        Some(t) => t.copy_from(input),
        None => *slot = Some(input.clone()),
    }
}

/// Stores a shape into a cached slot, reusing the previous allocation.
fn cache_shape(slot: &mut Option<Vec<usize>>, shape: &[usize]) {
    let s = slot.get_or_insert_with(Vec::new);
    s.clear();
    s.extend_from_slice(shape);
}

/// The forward-pass cache of `layer`, or a panic naming the layer:
/// calling backward before forward is a caller bug, and the failure
/// should identify the offending layer rather than an anonymous unwrap.
fn cached<'a, T>(slot: &'a Option<T>, layer: &str) -> &'a T {
    match slot {
        Some(v) => v,
        None => panic!("{layer}: backward without forward"),
    }
}

/// Unwraps a shape-checked tensor operation whose shapes agree by
/// construction (e.g. a reshape to the recorded input length).
fn shaped(result: Result<Tensor, crate::tensor::ShapeError>, what: &str) -> Tensor {
    match result {
        Ok(t) => t,
        Err(e) => panic!("{what}: {e:?}"),
    }
}

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a tensor as a parameter with zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty (never for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// Object-safe clone support for boxed layers, so a trained
/// [`crate::Sequential`] can be replicated per serving session. Every
/// `Layer + Clone` type gets this for free from the blanket impl.
pub trait LayerClone {
    /// Clones the layer behind a fresh box.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl<T: Layer + Clone + Send + 'static> LayerClone for T {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A differentiable layer operating on single samples. `Send` so that a
/// [`crate::Sequential`] can move onto a serving worker thread.
pub trait Layer: LayerClone + Send {
    /// Computes the output for `input`, caching state for the backward pass
    /// and recording work in `ops`.
    fn forward(&mut self, input: &Tensor, ops: &mut OpCount) -> Tensor;

    /// Propagates `grad_output` back to the input, accumulating parameter
    /// gradients. Must be called after a matching [`Layer::forward`].
    fn backward(&mut self, grad_output: &Tensor, ops: &mut OpCount) -> Tensor;

    /// [`Layer::forward`] with the output tensor (and any internal
    /// intermediates) drawn from `arena`, so steady-state inference
    /// performs no heap allocation. The caller owns the returned tensor
    /// and is expected to recycle it. Numerically identical to `forward`.
    ///
    /// The default delegates to `forward`; layers with per-step buffers
    /// override it.
    fn forward_arena(
        &mut self,
        input: &Tensor,
        _arena: &mut Scratch,
        ops: &mut OpCount,
    ) -> Tensor {
        self.forward(input, ops)
    }

    /// [`Layer::backward`] with the gradient tensor drawn from `arena`.
    /// Numerically identical to `backward`.
    fn backward_arena(
        &mut self,
        grad_output: &Tensor,
        _arena: &mut Scratch,
        ops: &mut OpCount,
    ) -> Tensor {
        self.backward(grad_output, ops)
    }

    /// Mutable access to the layer's parameters (empty for stateless
    /// layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Visits each parameter in the same order as [`Layer::params_mut`]
    /// without allocating the intermediate `Vec` (the per-step variant the
    /// zero-allocation training path uses).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.params_mut() {
            f(p);
        }
    }

    /// Total scalar parameter count.
    fn param_count(&self) -> usize {
        0
    }

    /// Short layer name for reports.
    fn name(&self) -> &'static str;

    /// Output shape for a given input shape, without running the layer.
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;
}

/// Fully-connected layer: `y = W x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng64) -> Self {
        assert!(in_features > 0 && out_features > 0, "zero-sized linear");
        Linear {
            weight: Param::new(he_normal(&[out_features, in_features], in_features, rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Creates a layer from explicit weights and biases.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn from_weights(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().len(), 2, "weight must be rank 2");
        let out_features = weight.shape()[0];
        let in_features = weight.shape()[1];
        assert_eq!(bias.shape(), &[out_features], "bias shape mismatch");
        Linear {
            weight: Param::new(weight),
            bias: Param::new(bias),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// The weight matrix `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable weight matrix (e.g. for pruning or quantization passes).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    /// The bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// Input dimensionality.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output dimensionality.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Shared forward body: `out` must already have shape `[out]`; it is
    /// overwritten with `W x + b` via the blocked matvec kernel (per-row
    /// accumulation order identical to the scalar dot product).
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, ops: &mut OpCount) {
        assert_eq!(input.len(), self.in_features, "linear input size mismatch");
        let nnz = input.nonzero_count() as u64;
        out.as_mut_slice().copy_from_slice(self.bias.value.as_slice());
        gemm::matvec_into(
            self.out_features,
            self.in_features,
            self.weight.value.as_slice(),
            input.as_slice(),
            out.as_mut_slice(),
        );
        ops.record_mac(
            (self.in_features * self.out_features) as u64,
            nnz * self.out_features as u64,
        );
        ops.record_write(self.out_features as u64);
        cache_input(&mut self.cached_input, input);
    }

    /// Shared backward body accumulating into `grad_input` (pre-zeroed).
    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor, ops: &mut OpCount) {
        let input = cached(&self.cached_input, "linear");
        assert_eq!(grad_output.len(), self.out_features);
        let g = grad_output.as_slice();
        let x = input.as_slice();
        let w = self.weight.value.as_slice();
        {
            let gi = grad_input.as_mut_slice();
            let gw = self.weight.grad.as_mut_slice();
            let gb = self.bias.grad.as_mut_slice();
            for j in 0..self.out_features {
                let gj = g[j];
                gb[j] += gj;
                let row = &w[j * self.in_features..(j + 1) * self.in_features];
                let grow = &mut gw[j * self.in_features..(j + 1) * self.in_features];
                for i in 0..self.in_features {
                    gi[i] += gj * row[i];
                    grow[i] += gj * x[i];
                }
            }
        }
        let n = (self.in_features * self.out_features) as u64;
        ops.record_mac(2 * n, 2 * n);
        ops.record_write((self.in_features + self.out_features) as u64);
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, ops: &mut OpCount) -> Tensor {
        let mut out = Tensor::zeros(&[self.out_features]);
        self.forward_into(input, &mut out, ops);
        out
    }

    fn forward_arena(&mut self, input: &Tensor, arena: &mut Scratch, ops: &mut OpCount) -> Tensor {
        let mut out = arena.take(&[self.out_features]);
        self.forward_into(input, &mut out, ops);
        out
    }

    fn backward(&mut self, grad_output: &Tensor, ops: &mut OpCount) -> Tensor {
        let mut grad_input = Tensor::zeros(&[self.in_features]);
        self.backward_into(grad_output, &mut grad_input, ops);
        grad_input
    }

    fn backward_arena(
        &mut self,
        grad_output: &Tensor,
        arena: &mut Scratch,
        ops: &mut OpCount,
    ) -> Tensor {
        let mut grad_input = arena.take(&[self.in_features]);
        self.backward_into(grad_output, &mut grad_input, ops);
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn output_shape(&self, _input_shape: &[usize]) -> Vec<usize> {
        vec![self.out_features]
    }
}

/// 2-D convolution over `[C, H, W]` inputs with stride 1 and symmetric zero
/// padding. Forward and backward lower onto the cache-blocked im2col + GEMM
/// kernels in [`crate::gemm`], preserving the naive nest's per-output
/// `(ic, ky, kx)` accumulation order bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    cached_input: Option<Tensor>,
    /// Per-layer pool for the im2col and GEMM packing buffers, so the
    /// non-arena forward/backward path is also allocation-free once warm.
    scratch: Scratch,
}

impl Conv2d {
    /// Creates a `kernel × kernel` convolution with He initialization.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        rng: &mut Rng64,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0,
            "zero-sized conv"
        );
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(he_normal(
                &[out_channels, in_channels, kernel, kernel],
                fan_in,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            padding,
            cached_input: None,
            scratch: Scratch::new(),
        }
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Mutable weight tensor `[O, C, K, K]` (for pruning/quantization).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    /// Weight tensor `[O, C, K, K]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            h + 2 * self.padding + 1 - self.kernel,
            w + 2 * self.padding + 1 - self.kernel,
        )
    }

    fn conv_shape(&self, h: usize, w: usize) -> ConvShape {
        ConvShape {
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
            stride: 1,
            padding: self.padding,
            in_h: h,
            in_w: w,
        }
    }

    /// Shared forward body: `out` must have shape `[O, oh, ow]`; it is
    /// fully overwritten. `scratch` serves the im2col/packing buffers.
    fn forward_into(
        &mut self,
        input: &Tensor,
        out: &mut Tensor,
        scratch: &mut Scratch,
        ops: &mut OpCount,
    ) {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "conv input must be [C, H, W]");
        assert_eq!(shape[0], self.in_channels, "conv channel mismatch");
        let (h, w) = (shape[1], shape[2]);
        let (oh, ow) = self.out_hw(h, w);
        assert!(oh > 0 && ow > 0, "kernel larger than padded input");
        let s = self.conv_shape(h, w);
        let effective = gemm::conv2d_forward(
            &s,
            input.as_slice(),
            self.weight.value.as_slice(),
            self.bias.value.as_slice(),
            out.as_mut_slice(),
            scratch,
        );
        let nominal =
            (self.out_channels * oh * ow * self.in_channels * self.kernel * self.kernel) as u64;
        ops.record_mac(nominal, effective.min(nominal));
        ops.record_write((self.out_channels * oh * ow) as u64);
        cache_input(&mut self.cached_input, input);
    }

    /// Shared backward body accumulating into `grad_input` (pre-zeroed).
    fn backward_into(
        &mut self,
        grad_output: &Tensor,
        grad_input: &mut Tensor,
        scratch: &mut Scratch,
        ops: &mut OpCount,
    ) {
        let input = cached(&self.cached_input, "conv2d");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(grad_output.shape(), &[self.out_channels, oh, ow]);
        let s = self.conv_shape(h, w);
        gemm::conv2d_backward(
            &s,
            input.as_slice(),
            self.weight.value.as_slice(),
            grad_output.as_slice(),
            grad_input.as_mut_slice(),
            self.weight.grad.as_mut_slice(),
            self.bias.grad.as_mut_slice(),
            scratch,
        );
        let nominal =
            2 * (self.out_channels * oh * ow * self.in_channels * self.kernel * self.kernel) as u64;
        ops.record_mac(nominal, nominal);
        ops.record_write((input.len() + self.weight.len()) as u64);
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, ops: &mut OpCount) -> Tensor {
        assert_eq!(input.shape().len(), 3, "conv input must be [C, H, W]");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(&[self.out_channels, oh, ow]);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.forward_into(input, &mut out, &mut scratch, ops);
        self.scratch = scratch;
        out
    }

    fn forward_arena(&mut self, input: &Tensor, arena: &mut Scratch, ops: &mut OpCount) -> Tensor {
        assert_eq!(input.shape().len(), 3, "conv input must be [C, H, W]");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = arena.take(&[self.out_channels, oh, ow]);
        self.forward_into(input, &mut out, arena, ops);
        out
    }

    fn backward(&mut self, grad_output: &Tensor, ops: &mut OpCount) -> Tensor {
        let input_shape = cached(&self.cached_input, "conv2d").shape().to_vec();
        let mut grad_input = Tensor::zeros(&input_shape);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.backward_into(grad_output, &mut grad_input, &mut scratch, ops);
        self.scratch = scratch;
        grad_input
    }

    fn backward_arena(
        &mut self,
        grad_output: &Tensor,
        arena: &mut Scratch,
        ops: &mut OpCount,
    ) -> Tensor {
        let mut grad_input = {
            let input = cached(&self.cached_input, "conv2d");
            let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
            arena.take(&[c, h, w])
        };
        self.backward_into(grad_output, &mut grad_input, arena, ops);
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        vec![self.out_channels, oh, ow]
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Relu {
    /// Records the positivity mask for the backward pass, reusing the
    /// previous mask allocation.
    fn record_mask(&mut self, input: &Tensor) {
        let mask = self.mask.get_or_insert_with(Vec::new);
        mask.clear();
        mask.extend(input.as_slice().iter().map(|&v| v > 0.0));
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, ops: &mut OpCount) -> Tensor {
        ops.record_compare(input.len() as u64);
        self.record_mask(input);
        input.map(|v| if v > 0.0 { v } else { 0.0 })
    }

    fn forward_arena(&mut self, input: &Tensor, arena: &mut Scratch, ops: &mut OpCount) -> Tensor {
        ops.record_compare(input.len() as u64);
        self.record_mask(input);
        let mut out = arena.take(input.shape());
        for (o, &v) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = if v > 0.0 { v } else { 0.0 };
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, _ops: &mut OpCount) -> Tensor {
        let mask = cached(&self.mask, "relu");
        assert_eq!(grad_output.len(), mask.len());
        let data = grad_output
            .as_slice()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        shaped(Tensor::from_vec(grad_output.shape(), data), "relu grad")
    }

    fn backward_arena(
        &mut self,
        grad_output: &Tensor,
        arena: &mut Scratch,
        _ops: &mut OpCount,
    ) -> Tensor {
        let mask = cached(&self.mask, "relu");
        assert_eq!(grad_output.len(), mask.len());
        let mut grad_input = arena.take(grad_output.shape());
        for ((o, &g), &m) in grad_input
            .as_mut_slice()
            .iter_mut()
            .zip(grad_output.as_slice())
            .zip(mask)
        {
            *o = if m { g } else { 0.0 };
        }
        grad_input
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

/// Max pooling over `[C, H, W]` with square window and equal stride.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxPool2d {
    window: usize,
    argmax: Option<Vec<usize>>,
    input_shape: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a pooling layer with `window × window` regions.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MaxPool2d {
            window,
            argmax: None,
            input_shape: None,
        }
    }
}

impl MaxPool2d {
    /// Shared forward body: `out` must have shape `[C, oh, ow]`; it is
    /// fully overwritten and the argmax/input-shape caches are refreshed
    /// in place (no allocation once warm).
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, ops: &mut OpCount) {
        let shape = input.shape();
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let (oh, ow) = (h / self.window, w / self.window);
        let x = input.as_slice();
        let argmax = self.argmax.get_or_insert_with(Vec::new);
        argmax.clear();
        argmax.resize(c * oh * ow, 0);
        {
            let o = out.as_mut_slice();
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..self.window {
                            for dx in 0..self.window {
                                let iy = oy * self.window + dy;
                                let ix = ox * self.window + dx;
                                let idx = (ci * h + iy) * w + ix;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = (ci * oh + oy) * ow + ox;
                        o[oidx] = best;
                        argmax[oidx] = best_idx;
                    }
                }
            }
        }
        ops.record_compare((c * oh * ow * self.window * self.window) as u64);
        cache_shape(&mut self.input_shape, shape);
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, ops: &mut OpCount) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "pool input must be [C, H, W]");
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let (oh, ow) = (h / self.window, w / self.window);
        assert!(oh > 0 && ow > 0, "pool window larger than input");
        let mut out = Tensor::zeros(&[c, oh, ow]);
        self.forward_into(input, &mut out, ops);
        out
    }

    fn forward_arena(&mut self, input: &Tensor, arena: &mut Scratch, ops: &mut OpCount) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "pool input must be [C, H, W]");
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let (oh, ow) = (h / self.window, w / self.window);
        assert!(oh > 0 && ow > 0, "pool window larger than input");
        let mut out = arena.take(&[c, oh, ow]);
        self.forward_into(input, &mut out, ops);
        out
    }

    fn backward(&mut self, grad_output: &Tensor, _ops: &mut OpCount) -> Tensor {
        let argmax = cached(&self.argmax, "maxpool2d");
        let input_shape = cached(&self.input_shape, "maxpool2d");
        let mut grad_input = Tensor::zeros(input_shape);
        let gi = grad_input.as_mut_slice();
        for (o, &src) in grad_output.as_slice().iter().zip(argmax) {
            gi[src] += o;
        }
        grad_input
    }

    fn backward_arena(
        &mut self,
        grad_output: &Tensor,
        arena: &mut Scratch,
        _ops: &mut OpCount,
    ) -> Tensor {
        let argmax = cached(&self.argmax, "maxpool2d");
        let input_shape = cached(&self.input_shape, "maxpool2d");
        let mut grad_input = arena.take(input_shape);
        let gi = grad_input.as_mut_slice();
        for (o, &src) in grad_output.as_slice().iter().zip(argmax) {
            gi[src] += o;
        }
        grad_input
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![
            input_shape[0],
            input_shape[1] / self.window,
            input_shape[2] / self.window,
        ]
    }
}

/// Flattens any input to rank 1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _ops: &mut OpCount) -> Tensor {
        cache_shape(&mut self.input_shape, input.shape());
        shaped(input.reshaped(&[input.len()]), "flatten")
    }

    fn forward_arena(&mut self, input: &Tensor, arena: &mut Scratch, _ops: &mut OpCount) -> Tensor {
        cache_shape(&mut self.input_shape, input.shape());
        let mut out = arena.take(&[input.len()]);
        out.as_mut_slice().copy_from_slice(input.as_slice());
        out
    }

    fn backward(&mut self, grad_output: &Tensor, _ops: &mut OpCount) -> Tensor {
        let shape = cached(&self.input_shape, "flatten");
        shaped(grad_output.reshaped(shape), "flatten grad")
    }

    fn backward_arena(
        &mut self,
        grad_output: &Tensor,
        arena: &mut Scratch,
        _ops: &mut OpCount,
    ) -> Tensor {
        let shape = cached(&self.input_shape, "flatten");
        let mut grad_input = arena.take(shape);
        grad_input
            .as_mut_slice()
            .copy_from_slice(grad_output.as_slice());
        grad_input
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape.iter().product()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(
        layer: &mut dyn Layer,
        input: &Tensor,
        eps: f32,
        tol: f32,
    ) {
        // Scalar objective: sum of outputs. d(sum)/d(input_i) via backward
        // must match finite differences.
        let mut ops = OpCount::new();
        let out = layer.forward(input, &mut ops);
        let ones = Tensor::filled(out.shape(), 1.0);
        let grad = layer.backward(&ones, &mut ops);
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let f_plus = layer.forward(&plus, &mut ops).sum();
            let f_minus = layer.forward(&minus, &mut ops).sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grad.as_slice()[i];
            assert!(
                (numeric - analytic).abs() < tol,
                "input grad {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn linear_forward_known_values() {
        let w = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5]).expect("ok");
        let b = Tensor::from_vec(&[2], vec![0.1, -0.1]).expect("ok");
        let mut layer = Linear::from_weights(w, b);
        let mut ops = OpCount::new();
        let x = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).expect("ok");
        let y = layer.forward(&x, &mut ops);
        assert!((y.as_slice()[0] - (1.0 - 3.0 + 0.1)).abs() < 1e-6);
        assert!((y.as_slice()[1] - (2.0 + 2.0 + 1.5 - 0.1)).abs() < 1e-6);
        assert_eq!(ops.macs, 6);
        assert_eq!(ops.effective_macs, 6);
    }

    #[test]
    fn linear_counts_sparse_inputs() {
        let mut rng = Rng64::seed_from_u64(0);
        let mut layer = Linear::new(4, 3, &mut rng);
        let mut ops = OpCount::new();
        let x = Tensor::from_vec(&[4], vec![1.0, 0.0, 0.0, 2.0]).expect("ok");
        layer.forward(&x, &mut ops);
        assert_eq!(ops.macs, 12);
        assert_eq!(ops.effective_macs, 6, "2 of 4 inputs nonzero");
    }

    #[test]
    fn linear_gradient_matches_finite_difference() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut layer = Linear::new(5, 4, &mut rng);
        let x = he_normal(&[5], 5, &mut rng);
        finite_diff_check(&mut layer, &x, 1e-3, 1e-2);
    }

    #[test]
    fn linear_weight_gradient_matches_finite_difference() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = Tensor::from_vec(&[3], vec![0.5, -1.0, 2.0]).expect("ok");
        let mut ops = OpCount::new();
        let out = layer.forward(&x, &mut ops);
        let ones = Tensor::filled(out.shape(), 1.0);
        layer.backward(&ones, &mut ops);
        let grad = layer.weight.grad.clone();
        let eps = 1e-3;
        for i in 0..layer.weight.len() {
            let orig = layer.weight.value.as_slice()[i];
            layer.weight.value.as_mut_slice()[i] = orig + eps;
            let f_plus = layer.forward(&x, &mut ops).sum();
            layer.weight.value.as_mut_slice()[i] = orig - eps;
            let f_minus = layer.forward(&x, &mut ops).sum();
            layer.weight.value.as_mut_slice()[i] = orig;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[i]).abs() < 1e-2,
                "weight grad {i}"
            );
        }
    }

    #[test]
    fn conv_shapes_and_padding() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut conv = Conv2d::new(2, 4, 3, 1, &mut rng);
        let x = Tensor::zeros(&[2, 8, 8]);
        let mut ops = OpCount::new();
        let y = conv.forward(&x, &mut ops);
        assert_eq!(y.shape(), &[4, 8, 8], "same padding preserves HxW");
        assert_eq!(conv.output_shape(&[2, 8, 8]), vec![4, 8, 8]);
        // All-zero input: zero effective MACs.
        assert_eq!(ops.effective_macs, 0);
        assert!(ops.macs > 0);
    }

    #[test]
    fn conv_identity_kernel() {
        let mut rng = Rng64::seed_from_u64(6);
        let mut conv = Conv2d::new(1, 1, 1, 0, &mut rng);
        conv.weight.value.as_mut_slice()[0] = 2.0;
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).expect("ok");
        let mut ops = OpCount::new();
        let y = conv.forward(&x, &mut ops);
        assert_eq!(y.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn conv_gradient_matches_finite_difference() {
        let mut rng = Rng64::seed_from_u64(7);
        let mut conv = Conv2d::new(1, 2, 3, 1, &mut rng);
        let x = he_normal(&[1, 4, 4], 16, &mut rng);
        finite_diff_check(&mut conv, &x, 1e-2, 3e-2);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut relu = Relu::new();
        let mut ops = OpCount::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, 0.0, 3.0]).expect("ok");
        let y = relu.forward(&x, &mut ops);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 3.0]);
        let g = relu.backward(&Tensor::filled(&[4], 1.0), &mut ops);
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
        assert_eq!(ops.comparisons, 4);
    }

    #[test]
    fn maxpool_selects_and_routes_gradient() {
        let mut pool = MaxPool2d::new(2);
        let mut ops = OpCount::new();
        let x = Tensor::from_vec(
            &[1, 2, 4],
            vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 9.0],
        )
        .expect("ok");
        let y = pool.forward(&x, &mut ops);
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.as_slice(), &[5.0, 9.0]);
        let g = pool.backward(
            &Tensor::from_vec(&[1, 1, 2], vec![1.0, 2.0]).expect("ok"),
            &mut ops,
        );
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn flatten_round_trip() {
        let mut flat = Flatten::new();
        let mut ops = OpCount::new();
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = flat.forward(&x, &mut ops);
        assert_eq!(y.shape(), &[24]);
        let g = flat.backward(&Tensor::zeros(&[24]), &mut ops);
        assert_eq!(g.shape(), &[2, 3, 4]);
    }

    #[test]
    fn param_counts() {
        let mut rng = Rng64::seed_from_u64(8);
        let linear = Linear::new(10, 5, &mut rng);
        assert_eq!(linear.param_count(), 55);
        let conv = Conv2d::new(2, 3, 3, 1, &mut rng);
        assert_eq!(conv.param_count(), 2 * 3 * 9 + 3);
        assert_eq!(Relu::new().param_count(), 0);
    }
}
