//! Numeric guards for fault-degraded pipelines.
//!
//! Corrupted ingress (see `evlab_util::fault`) can push activations,
//! membrane potentials or pooled features to NaN/±Inf; once a single
//! non-finite value enters a state machine it poisons everything it
//! touches. These helpers repair values in place and count incidents
//! under the `tensor.guard.*` observability namespace, so chaos runs can
//! distinguish "degraded but valid" from "silently poisoned".

use crate::tensor::Tensor;
use evlab_util::obs;

/// Replaces every non-finite value (NaN, ±Inf) with `f32::MIN` in place,
/// returning how many values were repaired. Repairs are counted under
/// `tensor.guard.nonfinite`.
///
/// `f32::MIN` is chosen so a repaired logit can never win an argmax
/// against any finite competitor.
pub fn sanitize_finite(values: &mut [f32]) -> usize {
    let mut repaired = 0usize;
    for v in values.iter_mut() {
        if !v.is_finite() {
            *v = f32::MIN;
            repaired += 1;
        }
    }
    if repaired > 0 {
        obs::counter_add("tensor.guard.nonfinite", repaired as u64);
    }
    repaired
}

/// [`sanitize_finite`] over a tensor's storage.
pub fn sanitize_tensor(tensor: &mut Tensor) -> usize {
    sanitize_finite(tensor.as_mut_slice())
}

/// Whether every value is finite (no repair performed).
pub fn all_finite(values: &[f32]) -> bool {
    values.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_repairs_and_counts() {
        let mut v = vec![1.0, f32::NAN, -2.0, f32::INFINITY, f32::NEG_INFINITY];
        assert!(!all_finite(&v));
        assert_eq!(sanitize_finite(&mut v), 3);
        assert!(all_finite(&v));
        assert_eq!(v[0], 1.0);
        assert_eq!(v[2], -2.0);
        assert_eq!(v[1], f32::MIN);
        assert_eq!(sanitize_finite(&mut v), 0, "already finite");
    }

    #[test]
    fn sanitize_counts_in_obs() {
        obs::set_enabled(true);
        let before = obs::counter_value("tensor.guard.nonfinite");
        let mut v = vec![f32::NAN, f32::NAN];
        sanitize_finite(&mut v);
        assert_eq!(obs::counter_value("tensor.guard.nonfinite"), before + 2);
        obs::set_enabled(false);
    }

    #[test]
    fn repaired_logits_lose_argmax() {
        let mut t = Tensor::from_vec(&[3], vec![f32::NAN, -1.0e30, 0.5]).expect("shape");
        sanitize_tensor(&mut t);
        assert_eq!(t.argmax(), 2, "repaired value cannot win");
    }
}
