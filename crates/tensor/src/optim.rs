//! Optimizers.
//!
//! An optimizer consumes the gradients accumulated in [`Param::grad`] and
//! clears them. State (momentum, Adam moments) is keyed by parameter order,
//! which is stable for a fixed network structure.

use crate::layer::Param;
use crate::tensor::Tensor;

/// A gradient-descent optimizer.
///
/// Two calling conventions produce identical updates:
///
/// - [`Optimizer::step`] with the full parameter list (allocates the list
///   at the call site);
/// - [`Optimizer::begin_step`] once, then [`Optimizer::step_param`] for
///   each parameter in order — the allocation-free path used by
///   `train_batch_arena`, where parameters arrive through a visitor
///   instead of a collected `Vec`.
pub trait Optimizer {
    /// Applies one update step to the parameters and zeroes their gradients.
    ///
    /// The same parameter list (same order, same shapes) must be passed on
    /// every call.
    fn step(&mut self, params: &mut [&mut Param]) {
        self.begin_step();
        for (i, p) in params.iter_mut().enumerate() {
            self.step_param(i, p);
        }
    }

    /// Starts an update step (advances time-dependent state such as Adam's
    /// bias correction). Must be called exactly once before the per-param
    /// [`Optimizer::step_param`] calls of a step.
    fn begin_step(&mut self) {}

    /// Updates the `index`-th parameter and zeroes its gradient. Parameters
    /// must be visited in the same order every step (state is keyed by
    /// `index`).
    fn step_param(&mut self, index: usize, param: &mut Param);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
///
/// # Examples
///
/// ```
/// use evlab_tensor::layer::Param;
/// use evlab_tensor::optim::{Optimizer, Sgd};
/// use evlab_tensor::tensor::Tensor;
///
/// let mut p = Param::new(Tensor::from_vec(&[1], vec![1.0])?);
/// p.grad.as_mut_slice()[0] = 0.5;
/// let mut opt = Sgd::new(0.1, 0.0);
/// opt.step(&mut [&mut p]);
/// assert!((p.value.as_slice()[0] - 0.95).abs() < 1e-6);
/// assert_eq!(p.grad.as_slice()[0], 0.0, "gradient cleared");
/// # Ok::<(), evlab_tensor::tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and momentum coefficient
    /// `momentum` (0 disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step_param(&mut self, index: usize, p: &mut Param) {
        if self.momentum > 0.0 {
            // Velocity slots are created lazily on the first pass, in
            // visit order; later steps reuse them (no allocation).
            if index == self.velocity.len() {
                self.velocity.push(Tensor::zeros(p.value.shape()));
            }
            let Some(v) = self.velocity.get_mut(index) else {
                panic!("parameter list changed between steps");
            };
            assert_eq!(
                v.shape(),
                p.value.shape(),
                "parameter list changed between steps"
            );
            v.scale_assign(self.momentum);
            v.add_scaled(&p.grad, 1.0);
            p.value.add_scaled(v, -self.lr);
        } else {
            p.value.add_scaled(&p.grad, -self.lr);
        }
        p.zero_grad();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba).
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard defaults β₁ = 0.9, β₂ = 0.999,
    /// ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn step_param(&mut self, index: usize, p: &mut Param) {
        // Moment slots are created lazily on the first pass, in visit
        // order; later steps reuse them (no allocation).
        if index == self.m.len() {
            self.m.push(Tensor::zeros(p.value.shape()));
            self.v.push(Tensor::zeros(p.value.shape()));
        }
        let (Some(m), Some(v)) = (self.m.get_mut(index), self.v.get_mut(index)) else {
            panic!("parameter list changed between steps");
        };
        assert_eq!(
            m.shape(),
            p.value.shape(),
            "parameter list changed between steps"
        );
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        let g = p.grad.as_slice();
        let ms = m.as_mut_slice();
        let vs = v.as_mut_slice();
        let ps = p.value.as_mut_slice();
        for i in 0..g.len() {
            ms[i] = self.beta1 * ms[i] + (1.0 - self.beta1) * g[i];
            vs[i] = self.beta2 * vs[i] + (1.0 - self.beta2) * g[i] * g[i];
            let m_hat = ms[i] / bias1;
            let v_hat = vs[i] / bias2;
            ps[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        p.zero_grad();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Param) -> Tensor {
        // d/dx of 0.5 * x^2 is x.
        p.value.clone()
    }

    fn run_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = Param::new(Tensor::from_vec(&[2], vec![3.0, -4.0]).expect("ok"));
        for _ in 0..steps {
            p.grad = quadratic_grad(&p);
            opt.step(&mut [&mut p]);
        }
        p.value.norm_sq()
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let final_norm = run_descent(&mut opt, 100);
        assert!(final_norm < 1e-6, "norm {final_norm}");
    }

    #[test]
    fn momentum_accelerates() {
        let plain = run_descent(&mut Sgd::new(0.01, 0.0), 50);
        let momentum = run_descent(&mut Sgd::new(0.01, 0.9), 50);
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut opt = Adam::new(0.3);
        let final_norm = run_descent(&mut opt, 200);
        assert!(final_norm < 1e-3, "norm {final_norm}");
    }

    #[test]
    fn step_clears_gradients() {
        let mut p = Param::new(Tensor::from_vec(&[1], vec![1.0]).expect("ok"));
        p.grad.as_mut_slice()[0] = 1.0;
        Sgd::new(0.1, 0.5).step(&mut [&mut p]);
        assert_eq!(p.grad.as_slice()[0], 0.0);
    }

    #[test]
    fn per_param_path_matches_step_bitwise() {
        let make_params = || {
            vec![
                Param::new(Tensor::from_vec(&[2], vec![3.0, -4.0]).expect("ok")),
                Param::new(Tensor::from_vec(&[3], vec![1.0, 0.5, -2.0]).expect("ok")),
            ]
        };
        let opts: Vec<Box<dyn Optimizer>> = vec![
            Box::new(Sgd::new(0.1, 0.9)),
            Box::new(Adam::new(0.05)),
        ];
        let opts2: Vec<Box<dyn Optimizer>> = vec![
            Box::new(Sgd::new(0.1, 0.9)),
            Box::new(Adam::new(0.05)),
        ];
        for (mut opt_a, mut opt_b) in opts.into_iter().zip(opts2) {
            let mut pa = make_params();
            let mut pb = make_params();
            for _ in 0..3 {
                for p in pa.iter_mut().chain(pb.iter_mut()) {
                    p.grad = p.value.clone();
                }
                let mut refs: Vec<&mut Param> = pa.iter_mut().collect();
                opt_a.step(&mut refs);
                opt_b.begin_step();
                for (i, p) in pb.iter_mut().enumerate() {
                    opt_b.step_param(i, p);
                }
            }
            for (a, b) in pa.iter().zip(&pb) {
                for (x, y) in a.value.as_slice().iter().zip(b.value.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_panics() {
        Sgd::new(0.0, 0.0);
    }
}
