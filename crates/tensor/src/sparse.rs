//! Sparse representations and compressed feature-map formats.
//!
//! The paper's Fig. 2 (centre) shows how zero-skipping CNN accelerators store
//! feature maps in compressed form to cut memory traffic ([Aimar et al.
//! NullHop]). Two formats are implemented:
//!
//! * [`SparsityMapEncoding`] — a 1-bit-per-element occupancy mask plus the
//!   packed non-zero values (NullHop's scheme).
//! * [`ZeroRunLength`] — (run-length, value) pairs, favouring very sparse
//!   maps with long zero runs.
//!
//! A general [`CsrMatrix`] supports the graph adjacency and pruned-weight
//! experiments.

use crate::tensor::Tensor;
use evlab_util::check::{self, Invariant, Report};
use evlab_util::par;

/// Minimum rows per chunk before `spmv_into` fans rows out over the
/// kernel pool; below this, per-chunk dispatch overhead dominates.
const SPMV_ROWS_PER_CHUNK: usize = 512;
/// Upper bound on spmv chunk count (bounds dispatch overhead for huge
/// matrices).
const SPMV_MAX_CHUNKS: usize = 64;

/// Compressed sparse row matrix.
///
/// # Examples
///
/// ```
/// use evlab_tensor::sparse::CsrMatrix;
/// use evlab_tensor::tensor::Tensor;
///
/// let dense = Tensor::from_vec(&[2, 3], vec![0.0, 2.0, 0.0, 1.0, 0.0, 3.0])?;
/// let csr = CsrMatrix::from_dense(&dense);
/// assert_eq!(csr.nnz(), 3);
/// let y = csr.spmv(&[1.0, 1.0, 1.0]);
/// assert_eq!(y, vec![2.0, 4.0]);
/// # Ok::<(), evlab_tensor::tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds from a rank-2 dense tensor, dropping exact zeros.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn from_dense(dense: &Tensor) -> Self {
        assert_eq!(dense.shape().len(), 2, "CSR needs a rank-2 tensor");
        let (rows, cols) = (dense.shape()[0], dense.shape()[1]);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let data = dense.as_slice();
        for r in 0..rows {
            for c in 0..cols {
                let v = data[r * cols + c];
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        let csr = CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        check::run(&csr);
        csr
    }

    /// Builds an empty matrix, to be filled row by row with
    /// [`CsrMatrix::push_row`].
    pub fn with_shape(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows: 0,
            cols,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
        .reserved(rows)
    }

    fn reserved(mut self, rows: usize) -> Self {
        self.row_ptr.reserve(rows);
        self
    }

    /// Appends one row given `(col, value)` pairs with strictly increasing
    /// columns.
    ///
    /// # Panics
    ///
    /// Panics if columns are out of range or not strictly increasing.
    pub fn push_row(&mut self, entries: &[(u32, f32)]) {
        let mut prev: Option<u32> = None;
        for &(c, v) in entries {
            assert!((c as usize) < self.cols, "column out of range");
            if let Some(p) = prev {
                assert!(c > p, "columns must be strictly increasing");
            }
            prev = Some(c);
            self.col_idx.push(c);
            self.values.push(v);
        }
        self.rows += 1;
        self.row_ptr.push(self.values.len());
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Density `nnz / (rows*cols)` (0 for degenerate shapes).
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// The `(col, value)` entries of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        assert!(row < self.rows, "row out of range");
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        self.col_idx[start..end]
            .iter()
            .zip(&self.values[start..end])
            .map(|(&c, &v)| (c, v))
    }

    /// Sparse matrix × dense vector, convenience wrapper that allocates
    /// the result. Hot paths should use [`CsrMatrix::spmv_into`] with a
    /// reused output buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Sparse matrix × dense vector into a caller-provided buffer,
    /// performing no heap allocation. Every element of `y` is overwritten.
    ///
    /// Large matrices fan row bands out over the `evlab_util::par` kernel
    /// pool. Each row's accumulation is a self-contained ascending-column
    /// chain and each band is a disjoint contiguous slice of `y`, so the
    /// result is bitwise identical at every thread count (and to the
    /// serial loop).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn spmv_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "spmv dimension mismatch");
        assert_eq!(y.len(), self.rows, "spmv output length mismatch");
        let n_chunks = par::chunk_count(self.rows, SPMV_ROWS_PER_CHUNK, SPMV_MAX_CHUNKS);
        if n_chunks <= 1 {
            self.spmv_rows(x, y, 0);
            return;
        }
        let y_addr = y.as_mut_ptr() as usize;
        par::for_each_chunk(n_chunks, |c| {
            let std::ops::Range { start: lo, end: hi } =
                par::chunk_range_at(self.rows, n_chunks, c);
            // SAFETY: chunk ranges partition `0..rows` into disjoint
            // half-open intervals, so each band `y[lo..hi]` is written by
            // exactly one chunk; the base pointer outlives the region
            // because `y` is mutably borrowed for all of `spmv_into`.
            let band =
                unsafe { std::slice::from_raw_parts_mut((y_addr as *mut f32).add(lo), hi - lo) };
            self.spmv_rows(x, band, lo);
        });
    }

    /// Serial spmv over the row band starting at `row0`, writing
    /// `band[i] = row (row0 + i) · x`.
    fn spmv_rows(&self, x: &[f32], band: &mut [f32], row0: usize) {
        for (i, out) in band.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row(row0 + i) {
                acc += v * x[c as usize];
            }
            *out = acc;
        }
    }

    /// Reconstructs the dense tensor.
    pub fn to_dense(&self) -> Tensor {
        let mut t = Tensor::zeros(&[self.rows.max(1), self.cols.max(1)]);
        if self.rows == 0 || self.cols == 0 {
            return t;
        }
        let data = t.as_mut_slice();
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                data[r * self.cols + c as usize] = v;
            }
        }
        t
    }

    /// Storage size in bits: values (32 b) + column indices (32 b) + row
    /// pointers (32 b).
    pub fn size_bits(&self) -> usize {
        32 * (self.values.len() + self.col_idx.len() + self.row_ptr.len())
    }
}

/// Machine-checked CSR well-formedness ([`evlab_util::check`]): run by
/// the bulk constructor and the fuzz lab. Per-`push_row` checking would
/// turn incremental assembly quadratic, so `push_row` relies on its own
/// panics plus a final [`check::run`] by callers that want the guarantee.
impl Invariant for CsrMatrix {
    fn invariant_name(&self) -> &'static str {
        "csr-matrix"
    }

    fn check_invariants(&self, r: &mut Report) {
        r.require(self.row_ptr.len() == self.rows + 1, || {
            format!("{} row pointers for {} rows", self.row_ptr.len(), self.rows)
        });
        r.require(self.col_idx.len() == self.values.len(), || {
            format!("{} col indices vs {} values", self.col_idx.len(), self.values.len())
        });
        r.require(self.row_ptr.first() == Some(&0), || "row_ptr[0] != 0".to_string());
        r.require(self.row_ptr.last() == Some(&self.values.len()), || {
            format!(
                "row_ptr end {:?} != nnz {}",
                self.row_ptr.last(),
                self.values.len()
            )
        });
        for w in self.row_ptr.windows(2) {
            r.require(w[0] <= w[1], || {
                format!("row_ptr not monotone: {} then {}", w[0], w[1])
            });
        }
        for row in 0..self.rows {
            let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
            if hi > self.col_idx.len() || lo > hi {
                continue; // already reported above
            }
            let mut prev: Option<u32> = None;
            for &c in &self.col_idx[lo..hi] {
                r.require((c as usize) < self.cols, || {
                    format!("row {row} column {c} outside {} cols", self.cols)
                });
                r.require(prev.is_none_or(|p| p < c), || {
                    format!("row {row} columns not strictly increasing at {c}")
                });
                prev = Some(c);
            }
        }
    }
}

/// NullHop-style compression: a 1-bit occupancy mask plus packed non-zero
/// values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityMapEncoding {
    len: usize,
    mask: Vec<u64>,
    values: Vec<f32>,
}

impl SparsityMapEncoding {
    /// Encodes a flat feature map.
    pub fn encode(data: &[f32]) -> Self {
        let mut mask = vec![0u64; data.len().div_ceil(64)];
        let mut values = Vec::new();
        for (i, &v) in data.iter().enumerate() {
            if v != 0.0 {
                mask[i / 64] |= 1 << (i % 64);
                values.push(v);
            }
        }
        SparsityMapEncoding {
            len: data.len(),
            mask,
            values,
        }
    }

    /// Decodes back to the flat representation.
    pub fn decode(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        let mut vi = 0;
        for (i, slot) in out.iter_mut().enumerate() {
            if self.mask[i / 64] >> (i % 64) & 1 == 1 {
                *slot = self.values[vi];
                vi += 1;
            }
        }
        out
    }

    /// Encoded size in bits: 1 bit per element + 16 bits per non-zero value
    /// (NullHop stores 16-bit activations).
    pub fn size_bits(&self) -> usize {
        self.len + 16 * self.values.len()
    }

    /// Size of the uncompressed 16-bit map in bits.
    pub fn dense_bits(&self) -> usize {
        16 * self.len
    }

    /// Compression ratio `dense / encoded` (≥ 1 pays off).
    pub fn compression_ratio(&self) -> f64 {
        self.dense_bits() as f64 / self.size_bits() as f64
    }

    /// Number of non-zero values stored.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

/// Zero run-length encoding: a list of `(zero_run, value)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroRunLength {
    len: usize,
    pairs: Vec<(u16, f32)>,
    /// Zeros after the final non-zero value.
    trailing_zeros: usize,
}

/// Maximum representable run length per pair (a longer run splits into a
/// pair with value 0).
const MAX_RUN: usize = u16::MAX as usize;

impl ZeroRunLength {
    /// Encodes a flat feature map.
    pub fn encode(data: &[f32]) -> Self {
        let mut pairs = Vec::new();
        let mut run = 0usize;
        for &v in data {
            if v == 0.0 {
                run += 1;
                if run == MAX_RUN {
                    pairs.push((MAX_RUN as u16, 0.0));
                    run = 0;
                }
            } else {
                pairs.push((run as u16, v));
                run = 0;
            }
        }
        ZeroRunLength {
            len: data.len(),
            pairs,
            trailing_zeros: run,
        }
    }

    /// Decodes back to the flat representation.
    pub fn decode(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len);
        for &(run, v) in &self.pairs {
            out.extend(std::iter::repeat_n(0.0, run as usize));
            if !(v == 0.0 && run as usize == MAX_RUN) {
                out.push(v);
            }
        }
        out.extend(std::iter::repeat_n(0.0, self.trailing_zeros));
        out
    }

    /// Encoded size in bits: 16-bit run + 16-bit value per pair.
    pub fn size_bits(&self) -> usize {
        32 * self.pairs.len()
    }

    /// Size of the uncompressed 16-bit map in bits.
    pub fn dense_bits(&self) -> usize {
        16 * self.len
    }

    /// Compression ratio `dense / encoded`.
    pub fn compression_ratio(&self) -> f64 {
        if self.size_bits() == 0 {
            f64::INFINITY
        } else {
            self.dense_bits() as f64 / self.size_bits() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_round_trip() {
        let dense = Tensor::from_vec(
            &[3, 4],
            vec![
                0.0, 1.0, 0.0, 2.0, //
                0.0, 0.0, 0.0, 0.0, //
                3.0, 0.0, 4.0, 0.0,
            ],
        )
        .expect("ok");
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.density(), 4.0 / 12.0);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn csr_spmv_matches_dense() {
        let dense = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]).expect("ok");
        let csr = CsrMatrix::from_dense(&dense);
        let y = csr.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0]);
    }

    #[test]
    fn csr_spmv_parallel_path_matches_serial_bitwise() {
        // Large enough to clear SPMV_ROWS_PER_CHUNK and fan out.
        let (rows, cols) = (2 * SPMV_ROWS_PER_CHUNK + 17, 64);
        let mut csr = CsrMatrix::with_shape(0, cols);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..rows {
            let mut entries: Vec<(u32, f32)> = Vec::new();
            for c in 0..cols as u32 {
                if next() % 3 == 0 {
                    entries.push((c, (next() % 1000) as f32 / 250.0 - 2.0));
                }
            }
            csr.push_row(&entries);
        }
        let x: Vec<f32> = (0..cols).map(|i| (i as f32).sin()).collect();
        let mut serial = vec![0.0f32; rows];
        csr.spmv_rows(&x, &mut serial, 0);
        for threads in [1, 2, 4, 8] {
            evlab_util::par::with_threads(threads, || {
                let mut y = vec![0.0f32; rows];
                csr.spmv_into(&x, &mut y);
                for (r, (a, b)) in y.iter().zip(&serial).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {r} at {threads} threads");
                }
            });
        }
    }

    #[test]
    fn csr_spmv_into_overwrites_reused_buffer() {
        let dense = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]).expect("ok");
        let csr = CsrMatrix::from_dense(&dense);
        let mut y = vec![99.0f32; 2];
        csr.spmv_into(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![7.0, 6.0]);
        csr.spmv_into(&[0.0, 0.0, 0.0], &mut y);
        assert_eq!(y, vec![0.0, 0.0], "stale contents fully overwritten");
    }

    #[test]
    fn csr_incremental_rows() {
        let mut csr = CsrMatrix::with_shape(2, 4);
        csr.push_row(&[(1, 5.0), (3, -1.0)]);
        csr.push_row(&[]);
        assert_eq!(csr.rows(), 2);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.row(0).collect::<Vec<_>>(), vec![(1, 5.0), (3, -1.0)]);
        assert_eq!(csr.row(1).count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn csr_rejects_unsorted_columns() {
        let mut csr = CsrMatrix::with_shape(1, 4);
        csr.push_row(&[(2, 1.0), (1, 1.0)]);
    }

    #[test]
    fn sparsity_map_round_trip() {
        let data = vec![0.0, 1.5, 0.0, 0.0, -2.0, 0.0, 3.0, 0.0, 0.0, 0.0];
        let enc = SparsityMapEncoding::encode(&data);
        assert_eq!(enc.decode(), data);
        assert_eq!(enc.nnz(), 3);
    }

    #[test]
    fn sparsity_map_compresses_sparse_maps() {
        // 90% sparse map: 1 bit/elem + 16 bits per 10% -> ~2.6 bits/elem
        // vs 16 dense -> ratio > 5.
        let mut data = vec![0.0f32; 1000];
        for i in (0..1000).step_by(10) {
            data[i] = 1.0;
        }
        let enc = SparsityMapEncoding::encode(&data);
        assert!(enc.compression_ratio() > 5.0, "{}", enc.compression_ratio());
        // Dense map: compression fails (ratio < 1).
        let dense_enc = SparsityMapEncoding::encode(&vec![1.0f32; 1000]);
        assert!(dense_enc.compression_ratio() < 1.0);
    }

    #[test]
    fn zrle_round_trip_various() {
        for data in [
            vec![],
            vec![0.0; 5],
            vec![1.0, 2.0, 3.0],
            vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 0.0],
        ] {
            let enc = ZeroRunLength::encode(&data);
            assert_eq!(enc.decode(), data, "data {data:?}");
        }
    }

    #[test]
    fn zrle_handles_long_runs() {
        let mut data = vec![0.0f32; MAX_RUN + 10];
        data[MAX_RUN + 5] = 7.0;
        let enc = ZeroRunLength::encode(&data);
        assert_eq!(enc.decode(), data);
    }

    #[test]
    fn zrle_beats_map_encoding_on_extreme_sparsity() {
        // 1 nonzero in 10_000: ZRLE stores ~2 pairs; map stores 10_000 bits.
        let mut data = vec![0.0f32; 10_000];
        data[5_000] = 1.0;
        let zrle = ZeroRunLength::encode(&data);
        let map = SparsityMapEncoding::encode(&data);
        assert!(zrle.size_bits() < map.size_bits());
        assert!(zrle.compression_ratio() > 100.0);
    }
}
