//! Loss functions returning both the loss value and the gradient with
//! respect to the prediction.

use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// Numerically stable softmax of a rank-1 tensor.
///
/// # Panics
///
/// Panics if the tensor is empty.
pub fn softmax(logits: &Tensor) -> Tensor {
    let max = logits.max();
    let exps: Vec<f32> = logits.as_slice().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    match Tensor::from_vec(logits.shape(), exps.into_iter().map(|e| e / sum).collect()) {
        Ok(t) => t,
        Err(e) => panic!("softmax shape: {e:?}"),
    }
}

/// Softmax cross-entropy against a class index.
///
/// Returns `(loss, grad_wrt_logits)`.
///
/// # Panics
///
/// Panics if `target` is out of range.
///
/// # Examples
///
/// ```
/// use evlab_tensor::loss::cross_entropy;
/// use evlab_tensor::tensor::Tensor;
///
/// let logits = Tensor::from_vec(&[3], vec![2.0, 0.5, -1.0])?;
/// let (loss, grad) = cross_entropy(&logits, 0);
/// assert!(loss > 0.0);
/// assert!(grad.as_slice()[0] < 0.0, "pushing the target logit up");
/// # Ok::<(), evlab_tensor::tensor::ShapeError>(())
/// ```
pub fn cross_entropy(logits: &Tensor, target: usize) -> (f32, Tensor) {
    assert!(target < logits.len(), "target class out of range");
    let probs = softmax(logits);
    let p_target = probs.as_slice()[target].max(1e-12);
    let loss = -p_target.ln();
    let mut grad = probs;
    grad.as_mut_slice()[target] -= 1.0;
    (loss, grad)
}

/// Allocation-free [`cross_entropy`]: the gradient tensor comes from the
/// scratch arena (the caller recycles it after the backward pass) and the
/// softmax is computed directly into it, so the steady state performs no
/// heap allocation. Numerically identical to [`cross_entropy`].
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn cross_entropy_arena(
    logits: &Tensor,
    target: usize,
    arena: &mut Scratch,
) -> (f32, Tensor) {
    assert!(target < logits.len(), "target class out of range");
    let mut grad = arena.take(logits.shape());
    let max = logits.max();
    let mut sum = 0.0f32;
    for (g, &l) in grad.as_mut_slice().iter_mut().zip(logits.as_slice()) {
        let e = (l - max).exp();
        *g = e;
        sum += e;
    }
    for g in grad.as_mut_slice() {
        *g /= sum;
    }
    let p_target = grad.as_slice()[target].max(1e-12);
    let loss = -p_target.ln();
    grad.as_mut_slice()[target] -= 1.0;
    (loss, grad)
}

/// Mean squared error between prediction and target.
///
/// Returns `(loss, grad_wrt_prediction)` where the loss is averaged over
/// elements.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(prediction.shape(), target.shape(), "mse shape mismatch");
    let n = prediction.len() as f32;
    let diff = prediction.sub(target);
    let loss = diff.norm_sq() / n;
    let grad = diff.scaled(2.0 / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let logits = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]).expect("ok");
        let p = softmax(&logits);
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert!(p.as_slice().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&Tensor::from_vec(&[2], vec![1.0, 2.0]).expect("ok"));
        let b = softmax(&Tensor::from_vec(&[2], vec![1001.0, 1002.0]).expect("ok"));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let logits = Tensor::from_vec(&[3], vec![0.0, 1.0, 2.0]).expect("ok");
        let (loss, grad) = cross_entropy(&logits, 2);
        let p = softmax(&logits);
        assert!((loss + p.as_slice()[2].ln()).abs() < 1e-6);
        assert!((grad.as_slice()[0] - p.as_slice()[0]).abs() < 1e-6);
        assert!((grad.as_slice()[2] - (p.as_slice()[2] - 1.0)).abs() < 1e-6);
        // Gradient sums to ~0.
        assert!(grad.sum().abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_matches_finite_difference() {
        let logits = Tensor::from_vec(&[4], vec![0.3, -0.7, 1.2, 0.1]).expect("ok");
        let (_, grad) = cross_entropy(&logits, 1);
        let eps = 1e-3;
        for i in 0..4 {
            let mut plus = logits.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[i] -= eps;
            let numeric =
                (cross_entropy(&plus, 1).0 - cross_entropy(&minus, 1).0) / (2.0 * eps);
            assert!((numeric - grad.as_slice()[i]).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    fn cross_entropy_arena_matches_allocating_version() {
        let logits = Tensor::from_vec(&[4], vec![0.3, -0.7, 1.2, 0.1]).expect("ok");
        let (loss, grad) = cross_entropy(&logits, 1);
        let mut arena = Scratch::new();
        let (loss2, grad2) = cross_entropy_arena(&logits, 1, &mut arena);
        assert_eq!(loss.to_bits(), loss2.to_bits());
        for (a, b) in grad.as_slice().iter().zip(grad2.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        arena.recycle(grad2);
        // A second call must reuse the recycled tensor and still be exact.
        let (_, grad3) = cross_entropy_arena(&logits, 1, &mut arena);
        assert_eq!(grad3.as_slice(), grad.as_slice());
    }

    #[test]
    fn mse_basics() {
        let pred = Tensor::from_vec(&[2], vec![1.0, 3.0]).expect("ok");
        let target = Tensor::from_vec(&[2], vec![0.0, 1.0]).expect("ok");
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "target class out of range")]
    fn cross_entropy_bad_target_panics() {
        let logits = Tensor::from_vec(&[2], vec![0.0, 0.0]).expect("ok");
        cross_entropy(&logits, 2);
    }
}
