//! Minimal dense/sparse tensor and neural-network substrate.
//!
//! Rust has no mature deep-learning stack (the reason the paper's ecosystem
//! is "thin"), so `evlab` ships its own small substrate. It is deliberately
//! simple — `f32` dense tensors, manual layer-wise backpropagation, SGD and
//! Adam — but it is *instrumented*: every arithmetic operation and memory
//! access flows through an [`OpCount`], which is what lets the workspace
//! measure the "# Operations", "Memory bandwidth" and "Computation sparsity"
//! rows of the paper's Table I instead of asserting them.
//!
//! Modules:
//!
//! * [`tensor`] — the [`Tensor`] type and its shape-checked operations.
//! * [`gemm`] — cache-blocked GEMM/matvec microkernels and the im2col
//!   conv2d lowering (bit-identical to the naive loop nests by the
//!   summation-order contract documented there).
//! * [`scratch`] — the [`Scratch`] arena that makes steady-state training
//!   and inference allocation-free.
//! * [`counters`] — [`OpCount`], the arithmetic/memory instrumentation.
//! * [`guard`] — NaN/Inf repair for fault-degraded pipelines
//!   (`tensor.guard.nonfinite`).
//! * [`layer`] — the [`Layer`] trait and the dense layers (linear, conv2d,
//!   ReLU, pooling, flatten).
//! * [`network`] — [`Sequential`] container and the training step.
//! * [`loss`] — softmax cross-entropy and mean-squared-error losses.
//! * [`optim`] — SGD (with momentum) and Adam optimizers.
//! * [`init`] — He/Xavier initializers over the workspace PRNG.
//! * [`sparse`] — CSR matrices and the compressed feature-map formats of the
//!   paper's Fig. 2 (zero run-length encoding).
//!
//! # Examples
//!
//! ```
//! use evlab_tensor::counters::OpCount;
//! use evlab_tensor::layer::{Layer, Linear};
//! use evlab_tensor::tensor::Tensor;
//! use evlab_util::Rng64;
//!
//! let mut rng = Rng64::seed_from_u64(0);
//! let mut layer = Linear::new(4, 2, &mut rng);
//! let mut ops = OpCount::new();
//! let x = Tensor::from_vec(&[4], vec![1.0, 0.0, -1.0, 0.5])?;
//! let y = layer.forward(&x, &mut ops);
//! assert_eq!(y.shape(), &[2]);
//! assert_eq!(ops.macs, 8);
//! # Ok::<(), evlab_tensor::tensor::ShapeError>(())
//! ```

pub mod counters;
pub mod gemm;
pub mod guard;
pub mod init;
pub mod layer;
pub mod loss;
pub mod network;
pub mod optim;
pub mod scratch;
pub mod sparse;
pub mod tensor;

pub use counters::OpCount;
pub use layer::Layer;
pub use network::Sequential;
pub use scratch::Scratch;
pub use tensor::Tensor;
