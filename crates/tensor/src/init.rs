//! Weight initializers.

use crate::tensor::Tensor;
use evlab_util::Rng64;

/// He (Kaiming) normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// The right default for ReLU networks.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn he_normal(shape: &[usize], fan_in: usize, rng: &mut Rng64) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f64).sqrt();
    let mut t = Tensor::zeros(shape);
    for v in t.as_mut_slice() {
        *v = (rng.next_gaussian() * std) as f32;
    }
    t
}

/// Xavier (Glorot) uniform initialization:
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut Rng64,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fans must be positive");
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let mut t = Tensor::zeros(shape);
    for v in t.as_mut_slice() {
        *v = rng.range_f64(-limit, limit) as f32;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_has_right_scale() {
        let mut rng = Rng64::seed_from_u64(1);
        let t = he_normal(&[100, 100], 100, &mut rng);
        let mean: f32 = t.sum() / t.len() as f32;
        let var: f32 = t.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 0.02).abs() < 0.005, "var {var} vs 2/100");
    }

    #[test]
    fn xavier_respects_limits() {
        let mut rng = Rng64::seed_from_u64(2);
        let t = xavier_uniform(&[50, 50], 50, 50, &mut rng);
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= limit));
        assert!(t.max() > limit * 0.5, "values should span the range");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = he_normal(&[10], 10, &mut Rng64::seed_from_u64(7));
        let b = he_normal(&[10], 10, &mut Rng64::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
