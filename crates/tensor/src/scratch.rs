//! Reusable scratch arena for allocation-free steady-state compute.
//!
//! Every hot path in the workspace follows the same per-step pattern: it
//! needs a handful of intermediate buffers (layer activations, im2col
//! panels, gradients), uses them for exactly one step and then throws them
//! away. [`Scratch`] turns that throwaway into recycling: buffers are
//! `take`n from the arena, used, and `recycle`d back, so after a short
//! warmup the per-step demand is served entirely from pooled capacity and
//! the steady state performs **zero heap allocations** (the property the
//! counting-allocator gate in `scripts/verify.sh` enforces).
//!
//! # Lifetime rules
//!
//! - A taken buffer is owned by the caller; the arena keeps no reference
//!   to it. Dropping it instead of recycling is safe but leaks the reuse
//!   opportunity (and, if done every step, re-introduces per-step
//!   allocation).
//! - `take` returns a zero-filled buffer of exactly the requested shape;
//!   callers never observe stale contents.
//! - Reuse is capacity-fit: a request is served by the first pooled buffer
//!   whose capacity can hold it without reallocating. A step with a stable
//!   take/recycle pattern therefore converges: once every demanded length
//!   has been allocated at least once, no further allocation occurs.
//! - The arena is not thread-safe by design (`&mut self` everywhere); each
//!   worker owns its own arena. Code that runs on the `evlab_util::par`
//!   kernel pool gets one via [`with_worker_scratch`] (a thread-local
//!   arena per pool worker, reused across parallel regions); the serving
//!   runtime keeps one arena per session.

use crate::tensor::Tensor;
use std::cell::Cell;

/// A pool of recycled [`Tensor`]s and raw `f32` buffers.
///
/// # Examples
///
/// ```
/// use evlab_tensor::scratch::Scratch;
///
/// let mut arena = Scratch::new();
/// let t = arena.take(&[4, 4]);
/// assert_eq!(t.len(), 16);
/// arena.recycle(t);
/// // The second take reuses the first tensor's allocation.
/// let t2 = arena.take(&[2, 8]);
/// assert_eq!(t2.shape(), &[2, 8]);
/// ```
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Scratch {
    tensors: Vec<Tensor>,
    bufs: Vec<Vec<f32>>,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Number of pooled tensors plus raw buffers (diagnostics only).
    pub fn pooled(&self) -> usize {
        self.tensors.len() + self.bufs.len()
    }

    /// Takes a zero-filled tensor of the given shape, reusing a pooled
    /// allocation when one with sufficient capacity exists.
    ///
    /// # Panics
    ///
    /// Panics if the shape is invalid (empty or zero dimension).
    pub fn take(&mut self, shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        // Scan newest-first: the most recently recycled buffer is the most
        // likely to still be cache-resident.
        let slot = self
            .tensors
            .iter()
            .rposition(|t| t.data_capacity() >= len.max(1));
        match slot {
            Some(i) => {
                let mut t = self.tensors.swap_remove(i);
                t.reuse(shape);
                t
            }
            None => Tensor::zeros(shape),
        }
    }

    /// Returns a tensor to the pool.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.tensors.push(tensor);
    }

    /// Takes a zero-filled raw buffer of exactly `len` elements.
    pub fn take_buf(&mut self, len: usize) -> Vec<f32> {
        let slot = self.bufs.iter().rposition(|b| b.capacity() >= len);
        match slot {
            Some(i) => {
                let mut b = self.bufs.swap_remove(i);
                b.clear();
                b.resize(len, 0.0);
                b
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a raw buffer to the pool.
    pub fn put_buf(&mut self, buf: Vec<f32>) {
        self.bufs.push(buf);
    }
}

thread_local! {
    /// One arena per OS thread, serving the parallel kernels. Kernel pool
    /// workers are long-lived, and chunk→worker assignment in
    /// `par::for_each_chunk` is static (residue classes of the chunk
    /// index), so each worker's arena converges during warmup exactly as a
    /// single-threaded arena would — this is what keeps the threaded
    /// steady state at zero heap allocations.
    static WORKER_ARENA: Cell<Option<Scratch>> = const { Cell::new(None) };
}

/// Runs `f` with this thread's kernel arena — the per-worker scratch used
/// by the parallelized GEMM/conv/graph kernels. The arena persists for
/// the thread's lifetime, so repeated parallel regions reuse its buffers.
///
/// Reentrant calls (possible only if a kernel chunk itself called back
/// into a parallel kernel) see a fresh temporary arena instead of the
/// parked one: correct, but allocating — kernels therefore never nest
/// `with_worker_scratch` on purpose.
pub fn with_worker_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    WORKER_ARENA.with(|slot| {
        let mut arena = slot.take().unwrap_or_default();
        let r = f(&mut arena);
        slot.set(Some(arena));
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_after_recycle() {
        let mut arena = Scratch::new();
        let mut t = arena.take(&[3]);
        t.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0]);
        arena.recycle(t);
        let t2 = arena.take(&[3]);
        assert_eq!(t2.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn take_reuses_capacity() {
        let mut arena = Scratch::new();
        let t = arena.take(&[8]);
        arena.recycle(t);
        assert_eq!(arena.pooled(), 1);
        let _t2 = arena.take(&[2, 2]);
        assert_eq!(arena.pooled(), 0, "pooled tensor was reused, not copied");
    }

    #[test]
    fn undersized_pool_entries_are_skipped() {
        let mut arena = Scratch::new();
        arena.recycle(Tensor::zeros(&[2]));
        let big = arena.take(&[16]);
        assert_eq!(big.len(), 16);
        assert_eq!(arena.pooled(), 1, "small tensor stays pooled");
    }

    #[test]
    fn raw_buffers_round_trip() {
        let mut arena = Scratch::new();
        let mut b = arena.take_buf(5);
        b[0] = 9.0;
        arena.put_buf(b);
        let b2 = arena.take_buf(4);
        assert_eq!(b2, vec![0.0; 4]);
        assert_eq!(arena.pooled(), 0);
    }
}
