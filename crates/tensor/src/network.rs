//! Sequential network container and training helpers.

use crate::counters::OpCount;
use crate::layer::{Layer, Param};
use crate::loss::{cross_entropy, cross_entropy_arena};
use crate::optim::Optimizer;
use crate::scratch::Scratch;
use crate::tensor::Tensor;
use evlab_util::par;

/// A stack of layers applied in order.
///
/// # Examples
///
/// ```
/// use evlab_tensor::layer::{Linear, Relu};
/// use evlab_tensor::network::Sequential;
/// use evlab_tensor::counters::OpCount;
/// use evlab_tensor::tensor::Tensor;
/// use evlab_util::Rng64;
///
/// let mut rng = Rng64::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Linear::new(4, 8, &mut rng));
/// net.push(Relu::new());
/// net.push(Linear::new(8, 2, &mut rng));
/// let mut ops = OpCount::new();
/// let y = net.forward(&Tensor::zeros(&[4]), &mut ops);
/// assert_eq!(y.shape(), &[2]);
/// ```
#[derive(Default, Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrow of the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable borrow of the layer stack (e.g. for pruning passes).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Runs the network forward.
    pub fn forward(&mut self, input: &Tensor, ops: &mut OpCount) -> Tensor {
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward(&current, ops);
        }
        current
    }

    /// Propagates a loss gradient back through every layer, accumulating
    /// parameter gradients. Returns the gradient at the input.
    pub fn backward(&mut self, grad_output: &Tensor, ops: &mut OpCount) -> Tensor {
        let mut current = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            current = layer.backward(&current, ops);
        }
        current
    }

    /// [`Sequential::forward`] with every intermediate activation (and the
    /// returned output) drawn from `arena`. Numerically identical to
    /// `forward`; with a warm arena the steady state performs zero heap
    /// allocations. The caller owns the returned tensor and should recycle
    /// it back into `arena` when done.
    pub fn forward_arena(
        &mut self,
        input: &Tensor,
        arena: &mut Scratch,
        ops: &mut OpCount,
    ) -> Tensor {
        let mut current = arena.take(input.shape());
        current.as_mut_slice().copy_from_slice(input.as_slice());
        for layer in &mut self.layers {
            let next = layer.forward_arena(&current, arena, ops);
            arena.recycle(current);
            current = next;
        }
        current
    }

    /// [`Sequential::backward`] with every intermediate gradient drawn from
    /// `arena`. Returns the input gradient (recycle it when done).
    pub fn backward_arena(
        &mut self,
        grad_output: &Tensor,
        arena: &mut Scratch,
        ops: &mut OpCount,
    ) -> Tensor {
        let mut current = arena.take(grad_output.shape());
        current.as_mut_slice().copy_from_slice(grad_output.as_slice());
        for layer in self.layers.iter_mut().rev() {
            let next = layer.backward_arena(&current, arena, ops);
            arena.recycle(current);
            current = next;
        }
        current
    }

    /// All trainable parameters in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Visits every trainable parameter in the same order as
    /// [`Sequential::params_mut`], without allocating the list.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Parameter memory footprint in bytes at the given precision.
    pub fn param_bytes(&self, bytes_per_param: usize) -> usize {
        self.param_count() * bytes_per_param
    }

    /// Output shape for a given input shape.
    pub fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let mut shape = input_shape.to_vec();
        for layer in &self.layers {
            shape = layer.output_shape(&shape);
        }
        shape
    }

    /// Fraction of zero activations at the network *output* of each layer
    /// for the given input — the per-layer activation-sparsity profile used
    /// by the hardware mapper.
    pub fn activation_sparsity(&mut self, input: &Tensor) -> Vec<f64> {
        let mut ops = OpCount::new();
        let mut current = input.clone();
        let mut out = Vec::with_capacity(self.layers.len());
        for layer in &mut self.layers {
            current = layer.forward(&current, &mut ops);
            out.push(current.zero_fraction());
        }
        out
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("params", &self.param_count())
            .finish()
    }
}

/// Result of one classification training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// Cross-entropy loss before the update.
    pub loss: f32,
    /// Whether the pre-update prediction was correct.
    pub correct: bool,
}

/// Runs one forward/backward pass for a `(input, label)` pair, accumulating
/// gradients (no optimizer step).
pub fn accumulate_classification_step(
    net: &mut Sequential,
    input: &Tensor,
    label: usize,
    ops: &mut OpCount,
) -> StepResult {
    let logits = net.forward(input, ops);
    let correct = logits.argmax() == label;
    let (loss, grad) = cross_entropy(&logits, label);
    net.backward(&grad, ops);
    StepResult { loss, correct }
}

/// [`accumulate_classification_step`] with every per-step tensor drawn
/// from (and recycled back into) `arena`: zero heap allocations in steady
/// state, numerically identical results.
pub fn accumulate_classification_step_arena(
    net: &mut Sequential,
    input: &Tensor,
    label: usize,
    arena: &mut Scratch,
    ops: &mut OpCount,
) -> StepResult {
    let logits = net.forward_arena(input, arena, ops);
    let correct = logits.argmax() == label;
    let (loss, grad) = cross_entropy_arena(&logits, label, arena);
    arena.recycle(logits);
    let grad_input = net.backward_arena(&grad, arena, ops);
    arena.recycle(grad);
    arena.recycle(grad_input);
    StepResult { loss, correct }
}

/// [`train_batch`] on the allocation-free path: activations and gradients
/// come from `arena`, and the optimizer is driven through the per-param
/// visitor instead of a collected parameter list. Identical updates to
/// `train_batch`.
pub fn train_batch_arena(
    net: &mut Sequential,
    batch: &[(Tensor, usize)],
    optimizer: &mut dyn Optimizer,
    arena: &mut Scratch,
    ops: &mut OpCount,
) -> (f32, f32) {
    assert!(!batch.is_empty(), "empty batch");
    let mut loss_sum = 0.0;
    let mut correct = 0usize;
    for (input, label) in batch {
        let r = accumulate_classification_step_arena(net, input, *label, arena, ops);
        loss_sum += r.loss;
        if r.correct {
            correct += 1;
        }
    }
    let scale = 1.0 / batch.len() as f32;
    optimizer.begin_step();
    let mut index = 0usize;
    net.visit_params(&mut |p| {
        p.grad.scale_assign(scale);
        optimizer.step_param(index, p);
        index += 1;
    });
    (loss_sum * scale, correct as f32 * scale)
}

/// Trains on a batch of samples then applies one optimizer step, averaging
/// gradients over the batch. Returns mean loss and accuracy.
pub fn train_batch(
    net: &mut Sequential,
    batch: &[(Tensor, usize)],
    optimizer: &mut dyn Optimizer,
    ops: &mut OpCount,
) -> (f32, f32) {
    assert!(!batch.is_empty(), "empty batch");
    let mut loss_sum = 0.0;
    let mut correct = 0usize;
    for (input, label) in batch {
        let r = accumulate_classification_step(net, input, *label, ops);
        loss_sum += r.loss;
        if r.correct {
            correct += 1;
        }
    }
    let scale = 1.0 / batch.len() as f32;
    let mut params = net.params_mut();
    for p in params.iter_mut() {
        p.grad.scale_assign(scale);
    }
    optimizer.step(&mut params);
    (loss_sum * scale, correct as f32 * scale)
}

/// Upper bound on batch-parallel model replicas. Chunk count depends only
/// on the batch size (never the thread count), which is what makes
/// [`BatchTrainer::train_batch`] bitwise invariant under `EVLAB_THREADS`.
const MAX_BATCH_CHUNKS: usize = 8;

/// One model replica used by [`BatchTrainer`]: a clone of the network plus
/// its private arena and per-batch accumulators.
struct Replica {
    net: Sequential,
    arena: Scratch,
    ops: OpCount,
    loss: f32,
    correct: usize,
}

// `Replica` values are mutated from kernel-pool workers through raw
// pointers; this compile-time check keeps that sound (it holds because
// `Layer: Send`).
const fn assert_send<T: Send>() {}
const _: () = assert_send::<Replica>();

/// Data-parallel batch trainer: fans the samples of a batch across up to
/// [`MAX_BATCH_CHUNKS`] model replicas on the `evlab_util::par` kernel
/// pool, then reduces losses, op counts and gradients in ascending chunk
/// order and applies one optimizer step to the master network.
///
/// # Determinism contract
///
/// The chunk count is a function of the batch size only, and every
/// reduction (loss, accuracy, op counters, per-parameter gradient sums)
/// runs in ascending chunk order on the caller's thread — so results are
/// **bitwise identical for every `EVLAB_THREADS` value**. They are *not*
/// bitwise identical to [`train_batch_arena`]'s single-chain gradient
/// accumulation (the reduction tree differs: per-chunk partial sums are
/// combined chunk-by-chunk instead of sample-by-sample); batches small
/// enough for a single chunk delegate to [`train_batch_arena`] and match
/// it exactly.
///
/// Replicas and the parameter staging buffer are retained across calls,
/// so steady-state training performs zero heap allocations.
#[derive(Default)]
pub struct BatchTrainer {
    replicas: Vec<Replica>,
    staging: Vec<f32>,
}

impl BatchTrainer {
    /// Creates a trainer with no replicas; they are built lazily (by
    /// cloning the master network) on the first multi-chunk batch.
    pub fn new() -> Self {
        BatchTrainer::default()
    }

    /// Number of retained model replicas (diagnostics only).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// [`train_batch_arena`] with the per-sample forward/backward passes
    /// fanned across model replicas. Returns mean loss and accuracy; see
    /// the type-level docs for the determinism contract.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty.
    pub fn train_batch(
        &mut self,
        net: &mut Sequential,
        batch: &[(Tensor, usize)],
        optimizer: &mut dyn Optimizer,
        arena: &mut Scratch,
        ops: &mut OpCount,
    ) -> (f32, f32) {
        assert!(!batch.is_empty(), "empty batch");
        let n_chunks = par::chunk_count(batch.len(), 1, MAX_BATCH_CHUNKS);
        if n_chunks <= 1 {
            return train_batch_arena(net, batch, optimizer, arena, ops);
        }
        let BatchTrainer { replicas, staging } = self;

        // Push master parameters into every participating replica and
        // reset the per-batch accumulators.
        staging.clear();
        net.visit_params(&mut |p| staging.extend_from_slice(p.value.as_slice()));
        while replicas.len() < n_chunks {
            replicas.push(Replica {
                net: net.clone(),
                arena: Scratch::new(),
                ops: OpCount::new(),
                loss: 0.0,
                correct: 0,
            });
        }
        for r in replicas[..n_chunks].iter_mut() {
            let mut off = 0usize;
            r.net.visit_params(&mut |p| {
                let len = p.value.len();
                p.value
                    .as_mut_slice()
                    .copy_from_slice(&staging[off..off + len]);
                p.zero_grad();
                off += len;
            });
            r.ops = OpCount::new();
            r.loss = 0.0;
            r.correct = 0;
        }

        // Fan the batch out: chunk c accumulates its contiguous sample
        // range into replica c.
        let reps_addr = replicas.as_mut_ptr() as usize;
        par::for_each_chunk(n_chunks, |c| {
            // SAFETY: chunk indices are distinct and `c < n_chunks <=
            // replicas.len()`, so each chunk takes an exclusive reference
            // to its own replica; `replicas` is mutably borrowed (and not
            // otherwise touched) for the whole region, and `Replica: Send`
            // is asserted above.
            let r = unsafe { &mut *(reps_addr as *mut Replica).add(c) };
            let range = par::chunk_range_at(batch.len(), n_chunks, c);
            for (input, label) in &batch[range] {
                let s = accumulate_classification_step_arena(
                    &mut r.net, input, *label, &mut r.arena, &mut r.ops,
                );
                r.loss += s.loss;
                if s.correct {
                    r.correct += 1;
                }
            }
        });

        // Ascending-chunk reductions (deterministic regardless of which
        // worker ran which chunk).
        let mut loss_sum = 0.0f32;
        let mut correct = 0usize;
        for r in &replicas[..n_chunks] {
            loss_sum += r.loss;
            correct += r.correct;
            *ops += r.ops;
        }
        staging.iter_mut().for_each(|v| *v = 0.0);
        for r in replicas[..n_chunks].iter_mut() {
            let mut off = 0usize;
            r.net.visit_params(&mut |p| {
                let len = p.grad.len();
                for (s, g) in staging[off..off + len].iter_mut().zip(p.grad.as_slice()) {
                    *s += g;
                }
                off += len;
            });
        }

        // Apply the summed gradients through the master network, mirroring
        // `train_batch_arena`'s tail (scale, then per-param visitor step).
        let scale = 1.0 / batch.len() as f32;
        optimizer.begin_step();
        let mut index = 0usize;
        let mut off = 0usize;
        net.visit_params(&mut |p| {
            let len = p.grad.len();
            p.grad
                .as_mut_slice()
                .copy_from_slice(&staging[off..off + len]);
            p.grad.scale_assign(scale);
            optimizer.step_param(index, p);
            index += 1;
            off += len;
        });
        (loss_sum * scale, correct as f32 * scale)
    }
}

/// Evaluates classification accuracy over a dataset.
pub fn evaluate(
    net: &mut Sequential,
    samples: &[(Tensor, usize)],
    ops: &mut OpCount,
) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|(x, label)| net.forward(x, ops).argmax() == *label)
        .count();
    correct as f32 / samples.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Linear, Relu};
    use crate::optim::Sgd;
    use evlab_util::Rng64;

    /// A linearly separable toy problem: sign of the first input.
    fn toy_dataset(rng: &mut Rng64, n: usize) -> Vec<(Tensor, usize)> {
        (0..n)
            .map(|_| {
                let x0 = rng.range_f64(-1.0, 1.0) as f32;
                let x1 = rng.range_f64(-1.0, 1.0) as f32;
                let label = usize::from(x0 > 0.0);
                (
                    Tensor::from_vec(&[2], vec![x0, x1]).expect("ok"),
                    label,
                )
            })
            .collect()
    }

    #[test]
    fn network_learns_separable_problem() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Linear::new(2, 8, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(8, 2, &mut rng));
        let train = toy_dataset(&mut rng, 200);
        let test = toy_dataset(&mut rng, 100);
        let mut opt = Sgd::new(0.5, 0.9);
        let mut ops = OpCount::new();
        for _ in 0..30 {
            for chunk in train.chunks(20) {
                train_batch(&mut net, chunk, &mut opt, &mut ops);
            }
        }
        let acc = evaluate(&mut net, &test, &mut ops);
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(ops.macs > 0);
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut net = Sequential::new();
        net.push(Linear::new(2, 4, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(4, 2, &mut rng));
        let train = toy_dataset(&mut rng, 100);
        let mut opt = Sgd::new(0.3, 0.0);
        let mut ops = OpCount::new();
        let (first_loss, _) = train_batch(&mut net, &train, &mut opt, &mut ops);
        let mut last_loss = first_loss;
        for _ in 0..20 {
            let (l, _) = train_batch(&mut net, &train, &mut opt, &mut ops);
            last_loss = l;
        }
        assert!(last_loss < first_loss * 0.8, "{first_loss} -> {last_loss}");
    }

    #[test]
    fn arena_training_path_matches_allocating_path_bitwise() {
        let build = || {
            let mut rng = Rng64::seed_from_u64(9);
            let mut net = Sequential::new();
            net.push(Linear::new(2, 8, &mut rng));
            net.push(Relu::new());
            net.push(Linear::new(8, 2, &mut rng));
            net
        };
        let mut rng = Rng64::seed_from_u64(10);
        let batch = toy_dataset(&mut rng, 12);
        let mut net_a = build();
        let mut net_b = build();
        let mut opt_a = Sgd::new(0.2, 0.9);
        let mut opt_b = Sgd::new(0.2, 0.9);
        let mut arena = Scratch::new();
        let mut ops_a = OpCount::new();
        let mut ops_b = OpCount::new();
        for _ in 0..3 {
            let (la, aa) = train_batch(&mut net_a, &batch, &mut opt_a, &mut ops_a);
            let (lb, ab) =
                train_batch_arena(&mut net_b, &batch, &mut opt_b, &mut arena, &mut ops_b);
            assert_eq!(la.to_bits(), lb.to_bits());
            assert_eq!(aa, ab);
        }
        assert_eq!(ops_a, ops_b, "op accounting identical on both paths");
        let pa = net_a.params_mut();
        let pb = net_b.params_mut();
        for (a, b) in pa.iter().zip(&pb) {
            for (x, y) in a.value.as_slice().iter().zip(b.value.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn batch_trainer_is_bitwise_invariant_across_thread_counts() {
        let build = || {
            let mut rng = Rng64::seed_from_u64(21);
            let mut net = Sequential::new();
            net.push(Linear::new(2, 8, &mut rng));
            net.push(Relu::new());
            net.push(Linear::new(8, 2, &mut rng));
            net
        };
        let mut rng = Rng64::seed_from_u64(22);
        let batch = toy_dataset(&mut rng, 24);
        let run = |threads: usize| {
            evlab_util::par::with_threads(threads, || {
                let mut net = build();
                let mut trainer = BatchTrainer::new();
                let mut opt = Sgd::new(0.2, 0.9);
                let mut arena = Scratch::new();
                let mut ops = OpCount::new();
                let mut stats = (0.0f32, 0.0f32);
                for _ in 0..3 {
                    stats = trainer.train_batch(&mut net, &batch, &mut opt, &mut arena, &mut ops);
                }
                let bits: Vec<u32> = net
                    .params_mut()
                    .iter()
                    .flat_map(|p| p.value.as_slice().iter().map(|v| v.to_bits()))
                    .collect();
                (stats.0.to_bits(), stats.1.to_bits(), bits, ops)
            })
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), base, "diverged at {threads} threads");
        }
    }

    #[test]
    fn batch_trainer_delegates_single_chunk_batches_bitwise() {
        let build = || {
            let mut rng = Rng64::seed_from_u64(31);
            let mut net = Sequential::new();
            net.push(Linear::new(2, 4, &mut rng));
            net.push(Relu::new());
            net.push(Linear::new(4, 2, &mut rng));
            net
        };
        let mut rng = Rng64::seed_from_u64(32);
        let batch = toy_dataset(&mut rng, 1);
        let mut net_a = build();
        let mut net_b = build();
        let mut opt_a = Sgd::new(0.2, 0.0);
        let mut opt_b = Sgd::new(0.2, 0.0);
        let mut arena_a = Scratch::new();
        let mut arena_b = Scratch::new();
        let mut ops_a = OpCount::new();
        let mut ops_b = OpCount::new();
        let mut trainer = BatchTrainer::new();
        let (la, aa) = trainer.train_batch(&mut net_a, &batch, &mut opt_a, &mut arena_a, &mut ops_a);
        let (lb, ab) = train_batch_arena(&mut net_b, &batch, &mut opt_b, &mut arena_b, &mut ops_b);
        assert_eq!(la.to_bits(), lb.to_bits());
        assert_eq!(aa, ab);
        assert_eq!(ops_a, ops_b);
        assert_eq!(trainer.replica_count(), 0, "no replicas built for one chunk");
        for (a, b) in net_a.params_mut().iter().zip(&net_b.params_mut()) {
            for (x, y) in a.value.as_slice().iter().zip(b.value.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn batch_trainer_still_learns() {
        let mut rng = Rng64::seed_from_u64(41);
        let mut net = Sequential::new();
        net.push(Linear::new(2, 8, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(8, 2, &mut rng));
        let train = toy_dataset(&mut rng, 200);
        let test = toy_dataset(&mut rng, 100);
        let mut trainer = BatchTrainer::new();
        let mut opt = Sgd::new(0.5, 0.9);
        let mut arena = Scratch::new();
        let mut ops = OpCount::new();
        for _ in 0..30 {
            for chunk in train.chunks(20) {
                trainer.train_batch(&mut net, chunk, &mut opt, &mut arena, &mut ops);
            }
        }
        let acc = evaluate(&mut net, &test, &mut ops);
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(trainer.replica_count() > 1, "batch was fanned out");
    }

    #[test]
    fn param_count_aggregates() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut net = Sequential::new();
        net.push(Linear::new(3, 4, &mut rng)); // 16
        net.push(Relu::new());
        net.push(Linear::new(4, 2, &mut rng)); // 10
        assert_eq!(net.param_count(), 26);
        assert_eq!(net.param_bytes(4), 104);
        assert_eq!(net.output_shape(&[3]), vec![2]);
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn activation_sparsity_reports_relu_zeros() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut net = Sequential::new();
        net.push(Linear::new(4, 32, &mut rng));
        net.push(Relu::new());
        let x = Tensor::filled(&[4], 1.0);
        let sparsity = net.activation_sparsity(&x);
        assert_eq!(sparsity.len(), 2);
        // ReLU on random pre-activations zeroes roughly half.
        assert!(sparsity[1] > 0.2 && sparsity[1] < 0.8, "{}", sparsity[1]);
    }

    #[test]
    fn debug_shows_layer_names() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut net = Sequential::new();
        net.push(Linear::new(2, 2, &mut rng));
        let dbg = format!("{net:?}");
        assert!(dbg.contains("linear"));
    }
}
