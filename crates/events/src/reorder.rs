//! Ingestion-side timestamp repair: bounded-skew reordering and 32-bit
//! rollover unwrapping.
//!
//! Real AER transports deliver events with *bounded* disorder — arbiter
//! races, per-column readout skew and bus retries displace timestamps by
//! microseconds, not seconds — and sensor timestamps wrap every 2³² µs
//! (~71 minutes). Every consumer in this workspace requires monotone
//! time, so ingestion repairs both before events reach a classifier:
//!
//! * [`TimeUnwrapper`] maps wrapped 32-bit timestamps onto an unbounded
//!   u64 timeline by detecting backward jumps larger than half the wrap
//!   period.
//! * [`ReorderBuffer`] holds events in a min-heap and releases them in
//!   timestamp order once they are older than `skew_us` relative to the
//!   newest event seen — restoring monotonicity for any input whose
//!   disorder is bounded by `skew_us`. Events that arrive *too* late
//!   (older than the newest already-released timestamp) are quarantined,
//!   never emitted out of order.
//!
//! Both are deterministic: ties release in arrival order, and neither
//! consults the wall clock.
//!
//! # Examples
//!
//! ```
//! use evlab_events::reorder::ReorderBuffer;
//! use evlab_events::{Event, Polarity};
//!
//! let mut buf = ReorderBuffer::new(100);
//! let mut out = Vec::new();
//! for t in [50u64, 30, 70, 60, 200, 180] {
//!     buf.push(Event::new(t, 0, 0, Polarity::On), &mut out);
//! }
//! buf.flush(&mut out);
//! let ts: Vec<u64> = out.iter().map(|e| e.t.as_micros()).collect();
//! assert_eq!(ts, vec![30, 50, 60, 70, 180, 200]);
//! assert_eq!(buf.late_dropped(), 0);
//! ```

use crate::event::{Event, Timestamp};
use evlab_util::check::{self, Invariant, Report};
use evlab_util::fault::ROLLOVER_PERIOD_US;
use evlab_util::frame::{Decoder, Encoder, FrameError, StateSnapshot};
use evlab_util::obs;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Maps wrapped 32-bit sensor timestamps onto a monotone u64 timeline.
///
/// A backward jump of more than half the wrap period is interpreted as a
/// rollover (the sensor clock wrapped), incrementing the epoch; smaller
/// backward jumps are genuine disorder and pass through for the
/// [`ReorderBuffer`] to repair.
#[derive(Debug, Clone, Default)]
pub struct TimeUnwrapper {
    last_raw: Option<u64>,
    epoch: u64,
    rollovers: u64,
}

impl TimeUnwrapper {
    /// Creates an unwrapper starting at epoch 0.
    pub fn new() -> Self {
        TimeUnwrapper::default()
    }

    /// Unwraps one raw timestamp (µs, wrapped at 2³²) into the unbounded
    /// timeline.
    pub fn unwrap_us(&mut self, raw_us: u64) -> u64 {
        let raw = raw_us % ROLLOVER_PERIOD_US;
        if let Some(last) = self.last_raw {
            if last > raw && last - raw > ROLLOVER_PERIOD_US / 2 {
                self.epoch += 1;
                self.rollovers += 1;
                obs::counter_add("ingest.rollovers", 1);
            }
        }
        self.last_raw = Some(raw);
        self.epoch * ROLLOVER_PERIOD_US + raw
    }

    /// Unwraps an event's timestamp in place.
    pub fn unwrap_event(&mut self, event: Event) -> Event {
        Event {
            t: Timestamp::from_micros(self.unwrap_us(event.t.as_micros())),
            ..event
        }
    }

    /// Number of rollovers detected so far.
    pub fn rollovers(&self) -> u64 {
        self.rollovers
    }

    /// Resets to epoch 0 (new session).
    pub fn reset(&mut self) {
        *self = TimeUnwrapper::default();
    }
}

/// A bounded-skew reorder buffer restoring monotone timestamps.
///
/// Holds up to `skew_us` of event time: an event is released once the
/// newest timestamp seen exceeds it by **at least** `skew_us` — exactly
/// `max_seen - t >= skew_us`, never a clamped watermark subtraction. The
/// release watermark is `max_seen - skew_us`, and the boundary is
/// *inclusive* — an event with `t == watermark` is delivered, not held
/// (equivalently: an event is held only while `max_seen - t < skew_us`).
/// The same rule gives streams that start at `t < skew_us` an implicit
/// **warm-up phase**: while `max_seen < skew_us` no watermark exists yet
/// and *nothing* is released, not even `t == 0` (a clamped
/// `max_seen.saturating_sub(skew_us)` watermark would leak zero-time
/// events before their disorder horizon had passed).
/// Any input whose per-event displacement is bounded by `skew_us / 2`
/// (so two events can cross by at most `skew_us`) comes out exactly
/// time-sorted. Events older than the newest released timestamp are
/// counted as late (`ingest.late_dropped`) and quarantined rather than
/// emitted out of order; an event *equal* to the last released timestamp
/// is not late (ties are legal and release FIFO).
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    skew_us: u64,
    /// Min-heap on `(t, seq)`: seq is arrival order, so ties release
    /// deterministically first-in-first-out.
    heap: BinaryHeap<Reverse<(u64, u64, HeapEvent)>>,
    seq: u64,
    max_seen: u64,
    last_released: Option<u64>,
    late_dropped: u64,
}

/// Event payload stored in the heap; ordering is carried entirely by the
/// `(t, seq)` prefix of the tuple, but `BinaryHeap` still requires `Ord`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEvent {
    x: u16,
    y: u16,
    on: bool,
}

impl PartialOrd for HeapEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.x, self.y, self.on).cmp(&(other.x, other.y, other.on))
    }
}

impl ReorderBuffer {
    /// Creates a buffer tolerating up to `skew_us` of timestamp disorder.
    /// `skew_us == 0` degenerates to a pass-through that quarantines any
    /// out-of-order event.
    pub fn new(skew_us: u64) -> Self {
        ReorderBuffer {
            skew_us,
            heap: BinaryHeap::new(),
            seq: 0,
            max_seen: 0,
            last_released: None,
            late_dropped: 0,
        }
    }

    /// The configured skew tolerance in microseconds.
    pub fn skew_us(&self) -> u64 {
        self.skew_us
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Events quarantined for arriving later than the skew tolerance.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Offers one event; ready events — those with
    /// `max_seen - t >= skew_us` (inclusive boundary) — are appended to
    /// `out` in timestamp order. Returns how many were released.
    pub fn push(&mut self, event: Event, out: &mut Vec<Event>) -> usize {
        let t = event.t.as_micros();
        if let Some(last) = self.last_released {
            if t < last {
                // Beyond repair: releasing it would break monotonicity
                // for the consumer. Quarantine instead.
                self.late_dropped += 1;
                obs::counter_add("ingest.late_dropped", 1);
                return 0;
            }
        }
        self.heap.push(Reverse((
            t,
            self.seq,
            HeapEvent {
                x: event.x,
                y: event.y,
                on: event.polarity == crate::event::Polarity::On,
            },
        )));
        self.seq += 1;
        self.max_seen = self.max_seen.max(t);
        let released = self.release(out);
        check::run(self);
        released
    }

    fn release(&mut self, out: &mut Vec<Event>) -> usize {
        let mut released = 0;
        while let Some(Reverse((t, _, _))) = self.heap.peek() {
            // Inclusive boundary: `max_seen - t == skew_us` is delivered.
            // Holding it would strand boundary events forever on streams
            // whose inter-event gap equals the skew tolerance exactly.
            // Phrased as a distance (held events always have
            // `t <= max_seen`) rather than against a clamped
            // `max_seen - skew_us` watermark, so a stream starting at
            // `t < skew_us` keeps even its zero-time events buffered
            // through the warm-up phase.
            if self.max_seen.saturating_sub(*t) < self.skew_us {
                break;
            }
            let Some(Reverse((t, _, he))) = self.heap.pop() else {
                break;
            };
            self.last_released = Some(t);
            out.push(Event {
                t: Timestamp::from_micros(t),
                x: he.x,
                y: he.y,
                polarity: if he.on {
                    crate::event::Polarity::On
                } else {
                    crate::event::Polarity::Off
                },
            });
            released += 1;
        }
        released
    }

    /// Drains every buffered event (end of stream / session flush),
    /// appending them to `out` in timestamp order. Returns how many were
    /// released.
    pub fn flush(&mut self, out: &mut Vec<Event>) -> usize {
        let mut released = 0;
        while let Some(Reverse((t, _, he))) = self.heap.pop() {
            self.last_released = Some(t);
            out.push(Event {
                t: Timestamp::from_micros(t),
                x: he.x,
                y: he.y,
                polarity: if he.on {
                    crate::event::Polarity::On
                } else {
                    crate::event::Polarity::Off
                },
            });
            released += 1;
        }
        check::run(self);
        released
    }

    /// Clears all state (new session). Late-drop statistics reset too.
    pub fn reset(&mut self) {
        let skew = self.skew_us;
        *self = ReorderBuffer::new(skew);
    }
}

/// Crash-recovery serialization ([`StateSnapshot`]).
///
/// A checkpoint taken mid-stream captures the *entire* reorder state:
/// the events still held in the heap, the release watermark inputs
/// (`max_seen`), the quarantine boundary (`last_released`) and the
/// `late_dropped` tally. This is what makes a snapshot at the recovery
/// boundary safe: events quarantined before the snapshot stay
/// quarantined after restore (the boundary is preserved), events held in
/// the buffer are *not* silently dropped (they are serialized and release
/// later exactly as they would have), and replaying the post-snapshot
/// event tail reproduces bit-identical release and quarantine decisions
/// because neither depends on anything but this state.
impl StateSnapshot for ReorderBuffer {
    fn state_kind(&self) -> &'static str {
        "reorder-buffer"
    }

    fn save_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.skew_us);
        enc.put_u64(self.seq);
        enc.put_u64(self.max_seen);
        enc.put_opt_u64(self.last_released);
        enc.put_u64(self.late_dropped);
        // Heap iteration order is unspecified; serialize in (t, seq)
        // order so identical buffers produce identical bytes.
        let mut held: Vec<(u64, u64, HeapEvent)> =
            self.heap.iter().map(|Reverse(e)| *e).collect();
        held.sort_unstable_by_key(|&(t, s, _)| (t, s));
        enc.put_u64(held.len() as u64);
        for (t, s, he) in held {
            enc.put_u64(t);
            enc.put_u64(s);
            enc.put_u16(he.x);
            enc.put_u16(he.y);
            enc.put_bool(he.on);
        }
    }

    fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
        let skew_us = dec.take_u64()?;
        if skew_us != self.skew_us {
            return Err(dec.corrupt(format!(
                "snapshot skew {skew_us}us != configured {}us",
                self.skew_us
            )));
        }
        let seq = dec.take_u64()?;
        let max_seen = dec.take_u64()?;
        let last_released = dec.take_opt_u64()?;
        let late_dropped = dec.take_u64()?;
        let n = dec.take_u64()?;
        // 21 bytes per held entry: a corrupt count cannot over-allocate.
        if n > dec.remaining() as u64 / 21 {
            return Err(dec.corrupt(format!("{n} held events exceed the payload")));
        }
        let mut heap = BinaryHeap::with_capacity(n as usize);
        for _ in 0..n {
            let t = dec.take_u64()?;
            let s = dec.take_u64()?;
            let x = dec.take_u16()?;
            let y = dec.take_u16()?;
            let on = dec.take_bool()?;
            heap.push(Reverse((t, s, HeapEvent { x, y, on })));
        }
        // Assemble a candidate and hold it to the live-buffer invariants
        // before committing: a checksum-passing but semantically corrupt
        // snapshot (releasable held events, a held event older than the
        // quarantine boundary) must surface as a typed error, never load.
        let candidate = ReorderBuffer {
            skew_us: self.skew_us,
            heap,
            seq,
            max_seen,
            last_released,
            late_dropped,
        };
        if let Some(violation) = check::verify(&candidate).into_iter().next() {
            return Err(dec.corrupt(format!("snapshot violates invariant: {violation}")));
        }
        *self = candidate;
        Ok(())
    }
}

/// Machine-checked form of the release/quarantine contract
/// ([`evlab_util::check`]): run after every `push` and `flush` when
/// `EVLAB_CHECK` is active.
impl Invariant for ReorderBuffer {
    fn invariant_name(&self) -> &'static str {
        "reorder-buffer"
    }

    fn check_invariants(&self, r: &mut Report) {
        for &Reverse((t, s, _)) in self.heap.iter() {
            r.require(s < self.seq, || {
                format!("held seq {s} not below the next seq {}", self.seq)
            });
            r.require(t <= self.max_seen, || {
                format!("held t {t} exceeds max_seen {}", self.max_seen)
            });
            // Release completeness + warm-up: everything still held must
            // genuinely be inside the skew horizon. A clamped watermark
            // breaks the mirror-image check (nothing releasable remains),
            // which is exactly the near-zero-time bug this pins.
            r.require(self.max_seen.saturating_sub(t) < self.skew_us || self.skew_us == 0, || {
                format!(
                    "held t {t} is releasable: max_seen {} exceeds it by >= skew {}",
                    self.max_seen, self.skew_us
                )
            });
            if let Some(last) = self.last_released {
                r.require(t >= last, || {
                    format!("held t {t} older than last released {last}")
                });
            }
        }
        if let Some(last) = self.last_released {
            r.require(last <= self.max_seen, || {
                format!("last released {last} exceeds max_seen {}", self.max_seen)
            });
        }
        r.require(self.heap.len() as u64 <= self.seq, || {
            format!("{} held events but only {} ever pushed", self.heap.len(), self.seq)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Polarity;

    fn ev(t: u64) -> Event {
        Event::new(t, (t % 7) as u16, (t % 5) as u16, Polarity::On)
    }

    #[test]
    fn restores_order_within_skew() {
        let mut buf = ReorderBuffer::new(50);
        let mut out = Vec::new();
        for t in [100u64, 80, 120, 90, 140, 130, 200] {
            buf.push(ev(t), &mut out);
        }
        buf.flush(&mut out);
        let ts: Vec<u64> = out.iter().map(|e| e.t.as_micros()).collect();
        assert_eq!(ts, vec![80, 90, 100, 120, 130, 140, 200]);
        assert_eq!(buf.late_dropped(), 0);
    }

    #[test]
    fn event_exactly_at_watermark_is_released_not_held() {
        let mut buf = ReorderBuffer::new(50);
        let mut out = Vec::new();
        buf.push(ev(100), &mut out);
        assert!(out.is_empty(), "nothing older than skew yet");
        // max_seen = 150 puts the watermark at exactly 100: the boundary
        // is inclusive, so 100 must come out while 150 stays buffered.
        let released = buf.push(ev(150), &mut out);
        assert_eq!(released, 1);
        assert_eq!(out[0].t.as_micros(), 100);
        assert_eq!(buf.len(), 1, "150 itself is above the watermark");
        // An event equal to the last released timestamp is a legal tie,
        // not a late drop, and releases immediately (watermark is 100).
        let released = buf.push(ev(100), &mut out);
        assert_eq!(released, 1);
        assert_eq!(buf.late_dropped(), 0);
        assert_eq!(out[1].t.as_micros(), 100);
    }

    #[test]
    fn warm_up_holds_zero_time_events_until_horizon_passes() {
        // Stream starting at t < skew_us: a clamped watermark
        // (`max_seen.saturating_sub(skew_us)` = 0, inclusive boundary)
        // used to release t == 0 on arrival, before its disorder horizon.
        let mut buf = ReorderBuffer::new(100);
        let mut out = Vec::new();
        assert_eq!(buf.push(ev(0), &mut out), 0, "t=0 must warm up, not release");
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.push(ev(50), &mut out), 0);
        assert_eq!(buf.push(ev(99), &mut out), 0, "max_seen 99 < skew: still warming up");
        assert!(out.is_empty());
        assert_eq!(buf.len(), 3);
        // max_seen reaches skew: exactly the t=0 event is 100us old now.
        assert_eq!(buf.push(ev(100), &mut out), 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].t.as_micros(), 0);
        buf.flush(&mut out);
        let ts: Vec<u64> = out.iter().map(|e| e.t.as_micros()).collect();
        assert_eq!(ts, vec![0, 50, 99, 100]);
        assert_eq!(buf.late_dropped(), 0);
    }

    #[test]
    fn warm_up_reorders_near_zero_disorder() {
        // Disorder entirely inside the warm-up window must still come out
        // sorted; premature release of t=0 would have pinned
        // last_released before 0's peers arrived.
        let mut buf = ReorderBuffer::new(100);
        let mut out = Vec::new();
        for t in [5u64, 0, 3, 120, 60] {
            buf.push(ev(t), &mut out);
        }
        buf.flush(&mut out);
        let ts: Vec<u64> = out.iter().map(|e| e.t.as_micros()).collect();
        assert_eq!(ts, vec![0, 3, 5, 60, 120]);
        assert_eq!(buf.late_dropped(), 0);
    }

    #[test]
    fn stream_starting_exactly_at_skew_boundary() {
        let mut buf = ReorderBuffer::new(100);
        let mut out = Vec::new();
        assert_eq!(buf.push(ev(100), &mut out), 0, "distance 0 < skew: held");
        assert_eq!(buf.push(ev(200), &mut out), 1, "distance 100 == skew: released");
        assert_eq!(out[0].t.as_micros(), 100);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn quarantines_hopelessly_late_events() {
        let mut buf = ReorderBuffer::new(10);
        let mut out = Vec::new();
        buf.push(ev(100), &mut out);
        buf.push(ev(500), &mut out); // releases 100 (and 490-watermark keeps 500)
        assert!(out.iter().any(|e| e.t.as_micros() == 100));
        // 50 is older than the released 100: cannot be emitted in order.
        buf.push(ev(50), &mut out);
        assert_eq!(buf.late_dropped(), 1);
        buf.flush(&mut out);
        for w in out.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
        assert!(!out.iter().any(|e| e.t.as_micros() == 50));
    }

    #[test]
    fn zero_skew_is_passthrough_with_quarantine() {
        let mut buf = ReorderBuffer::new(0);
        let mut out = Vec::new();
        buf.push(ev(10), &mut out);
        buf.push(ev(20), &mut out);
        buf.push(ev(15), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(buf.late_dropped(), 1);
    }

    #[test]
    fn ties_release_in_arrival_order() {
        let mut buf = ReorderBuffer::new(5);
        let mut out = Vec::new();
        let a = Event::new(10, 1, 1, Polarity::On);
        let b = Event::new(10, 2, 2, Polarity::Off);
        buf.push(a, &mut out);
        buf.push(b, &mut out);
        buf.flush(&mut out);
        assert_eq!(out, vec![a, b], "FIFO on equal timestamps");
    }

    #[test]
    fn snapshot_mid_reorder_resumes_bit_identically() {
        use evlab_util::frame::{restore_from_bytes, snapshot_to_bytes};
        // Disordered stream; cut it while the buffer still holds events
        // and has already quarantined one.
        let ts = [100u64, 80, 120, 90, 500, 50, 470, 520, 480, 510, 600];
        let cut = 6; // buffer holds {470? no—pushed after cut}; cut after the late 50
        let mut oracle = ReorderBuffer::new(50);
        let mut oracle_out = Vec::new();
        let mut live = ReorderBuffer::new(50);
        let mut live_out = Vec::new();
        for &t in &ts[..cut] {
            oracle.push(ev(t), &mut oracle_out);
            live.push(ev(t), &mut live_out);
        }
        assert!(!live.is_empty(), "snapshot must be taken mid-reorder");
        assert_eq!(live.late_dropped(), 1, "50 was quarantined pre-snapshot");
        // Snapshot, restore into a freshly-configured buffer, continue.
        let bytes = snapshot_to_bytes(&live);
        let mut restored = ReorderBuffer::new(50);
        restore_from_bytes(&mut restored, &bytes).expect("valid snapshot");
        let mut restored_out = live_out.clone();
        for &t in &ts[cut..] {
            oracle.push(ev(t), &mut oracle_out);
            restored.push(ev(t), &mut restored_out);
        }
        oracle.flush(&mut oracle_out);
        restored.flush(&mut restored_out);
        assert_eq!(oracle_out, restored_out, "held events must not be dropped");
        assert_eq!(oracle.late_dropped(), restored.late_dropped());
    }

    #[test]
    fn snapshot_rejects_skew_mismatch() {
        use evlab_util::frame::{restore_from_bytes, snapshot_to_bytes, FrameError};
        let mut buf = ReorderBuffer::new(50);
        let mut out = Vec::new();
        buf.push(ev(10), &mut out);
        let bytes = snapshot_to_bytes(&buf);
        let mut other = ReorderBuffer::new(60);
        assert!(matches!(
            restore_from_bytes(&mut other, &bytes),
            Err(FrameError::Corrupt { .. })
        ));
    }

    #[test]
    fn invariant_flags_releasable_held_event() {
        // A hand-corrupted buffer — a held event whose disorder horizon
        // has already passed — must be flagged by the invariant layer.
        // This is the machine-checked mirror image of the warm-up fix: a
        // clamped-watermark release would leave this state unreachable.
        let mut bad = ReorderBuffer::new(50);
        bad.heap.push(Reverse((0, 0, HeapEvent { x: 0, y: 0, on: true })));
        bad.seq = 1;
        bad.max_seen = 500;
        let violations = check::verify(&bad);
        assert!(
            violations.iter().any(|v| v.contains("releasable")),
            "expected a release-completeness violation, got {violations:?}"
        );
    }

    #[test]
    fn snapshot_rejects_invariant_violating_state() {
        use evlab_util::frame::{restore_from_bytes, snapshot_to_bytes, FrameError};
        // A snapshot that frames correctly (CRC passes) but encodes
        // semantically corrupt state: a held event older than the
        // quarantine boundary. Restore must fail typed, not load it.
        let mut bad = ReorderBuffer::new(50);
        bad.heap.push(Reverse((10, 0, HeapEvent { x: 1, y: 1, on: true })));
        bad.seq = 1;
        bad.max_seen = 40;
        bad.last_released = Some(30);
        let bytes = snapshot_to_bytes(&bad);
        let mut target = ReorderBuffer::new(50);
        let err = restore_from_bytes(&mut target, &bytes);
        assert!(matches!(err, Err(FrameError::Corrupt { .. })), "got {err:?}");
        assert!(target.is_empty(), "failed restore must not commit state");
    }

    #[test]
    fn unwrapper_detects_rollover() {
        let mut u = TimeUnwrapper::new();
        let near_end = evlab_util::fault::ROLLOVER_PERIOD_US - 100;
        assert_eq!(u.unwrap_us(near_end), near_end);
        // Wraps: 50 raw means one full period elapsed.
        assert_eq!(
            u.unwrap_us(50),
            evlab_util::fault::ROLLOVER_PERIOD_US + 50
        );
        assert_eq!(u.rollovers(), 1);
        // Small backward jumps are disorder, not rollover.
        let t = u.unwrap_us(40);
        assert_eq!(t, evlab_util::fault::ROLLOVER_PERIOD_US + 40);
        assert_eq!(u.rollovers(), 1);
    }

    #[test]
    fn unwrapper_and_buffer_round_trip_wrapped_stream() {
        // A monotone u64 stream straddling the boundary, wrapped to 32
        // bits then repaired: unwrap + reorder restores the original.
        let period = evlab_util::fault::ROLLOVER_PERIOD_US;
        let original: Vec<Event> =
            (0..50).map(|i| ev(period - 250 + i * 10)).collect();
        let mut u = TimeUnwrapper::new();
        let mut buf = ReorderBuffer::new(0);
        let mut out = Vec::new();
        for e in &original {
            let wrapped = Event::new(e.t.as_micros() % period, e.x, e.y, e.polarity);
            let unwrapped = u.unwrap_event(wrapped);
            buf.push(unwrapped, &mut out);
        }
        buf.flush(&mut out);
        // First event re-bases at its raw (pre-epoch) value; durations and
        // order must match the original exactly.
        assert_eq!(out.len(), original.len());
        for (a, b) in original.windows(2).zip(out.windows(2)) {
            assert_eq!(
                a[1].t.as_micros() - a[0].t.as_micros(),
                b[1].t.as_micros() - b[0].t.as_micros()
            );
        }
        assert_eq!(u.rollovers(), 1);
    }
}
