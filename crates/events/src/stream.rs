//! Time-sorted event streams.

use crate::event::{Event, Polarity, Timestamp};
use evlab_util::check::{self, Invariant, Report};
use std::error::Error;
use std::fmt;

/// Error returned when constructing a stream from events that are not sorted
/// by timestamp or that fall outside the sensor resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventOrderError {
    /// Event at `index` has a timestamp earlier than its predecessor.
    OutOfOrder {
        /// Index of the offending event.
        index: usize,
    },
    /// Event at `index` lies outside the declared resolution.
    OutOfBounds {
        /// Index of the offending event.
        index: usize,
        /// Offending coordinates.
        x: u16,
        /// Offending coordinates.
        y: u16,
    },
}

impl fmt::Display for EventOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventOrderError::OutOfOrder { index } => {
                write!(f, "event {index} is earlier than its predecessor")
            }
            EventOrderError::OutOfBounds { index, x, y } => {
                write!(f, "event {index} at ({x}, {y}) is outside the sensor array")
            }
        }
    }
}

impl Error for EventOrderError {}

impl From<EventOrderError> for evlab_util::EvlabError {
    fn from(e: EventOrderError) -> Self {
        evlab_util::EvlabError::event_order(e)
    }
}

/// A monotonically time-sorted sequence of events from a sensor of known
/// resolution.
///
/// The sortedness invariant is established at construction and preserved by
/// every method, which lets windowing and merging use binary search, and lets
/// downstream consumers (frame builders, event-driven simulators, incremental
/// graph construction) assume causal ordering.
///
/// # Examples
///
/// ```
/// use evlab_events::{Event, EventStream, Polarity};
///
/// let s = EventStream::from_events(
///     (32, 32),
///     vec![
///         Event::new(0, 1, 1, Polarity::On),
///         Event::new(50, 2, 2, Polarity::Off),
///         Event::new(120, 3, 3, Polarity::On),
///     ],
/// )?;
/// let window = s.window(40, 130);
/// assert_eq!(window.len(), 2);
/// # Ok::<(), evlab_events::EventOrderError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventStream {
    width: u16,
    height: u16,
    events: Vec<Event>,
}

impl EventStream {
    /// Creates an empty stream for a `(width, height)` sensor.
    pub fn new(resolution: (u16, u16)) -> Self {
        EventStream {
            width: resolution.0,
            height: resolution.1,
            events: Vec::new(),
        }
    }

    /// Creates a stream from already-sorted events.
    ///
    /// # Errors
    ///
    /// Returns [`EventOrderError::OutOfOrder`] if timestamps decrease, or
    /// [`EventOrderError::OutOfBounds`] if an event lies outside the
    /// resolution.
    pub fn from_events(
        resolution: (u16, u16),
        events: Vec<Event>,
    ) -> Result<Self, EventOrderError> {
        for (i, e) in events.iter().enumerate() {
            if e.x >= resolution.0 || e.y >= resolution.1 {
                return Err(EventOrderError::OutOfBounds {
                    index: i,
                    x: e.x,
                    y: e.y,
                });
            }
            if i > 0 && e.t < events[i - 1].t {
                return Err(EventOrderError::OutOfOrder { index: i });
            }
        }
        let stream = EventStream {
            width: resolution.0,
            height: resolution.1,
            events,
        };
        check::run(&stream);
        Ok(stream)
    }

    /// Creates a stream from unsorted events by stably sorting them by
    /// timestamp first.
    ///
    /// # Errors
    ///
    /// Returns [`EventOrderError::OutOfBounds`] if an event lies outside the
    /// resolution.
    pub fn from_unsorted(
        resolution: (u16, u16),
        mut events: Vec<Event>,
    ) -> Result<Self, EventOrderError> {
        events.sort_by_key(|e| e.t);
        Self::from_events(resolution, events)
    }

    /// Sensor resolution `(width, height)`.
    pub fn resolution(&self) -> (u16, u16) {
        (self.width, self.height)
    }

    /// Sensor width in pixels.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Sensor height in pixels.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of pixels in the array.
    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events as a sorted slice.
    pub fn as_slice(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over the events in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Consumes the stream, returning the sorted event vector.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// First timestamp, or `None` when empty.
    pub fn start(&self) -> Option<Timestamp> {
        self.events.first().map(|e| e.t)
    }

    /// Last timestamp, or `None` when empty.
    pub fn end(&self) -> Option<Timestamp> {
        self.events.last().map(|e| e.t)
    }

    /// Duration between first and last event in microseconds (0 when fewer
    /// than two events).
    pub fn duration_us(&self) -> u64 {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e.saturating_since(s),
            _ => 0,
        }
    }

    /// Mean event rate in events per second (0 for degenerate streams).
    pub fn mean_rate_hz(&self) -> f64 {
        let d = self.duration_us();
        if d == 0 {
            0.0
        } else {
            self.events.len() as f64 / (d as f64 * 1e-6)
        }
    }

    /// Appends an event.
    ///
    /// # Errors
    ///
    /// Returns an error if the event would violate time ordering or bounds.
    pub fn push(&mut self, event: Event) -> Result<(), EventOrderError> {
        if event.x >= self.width || event.y >= self.height {
            return Err(EventOrderError::OutOfBounds {
                index: self.events.len(),
                x: event.x,
                y: event.y,
            });
        }
        if let Some(last) = self.events.last() {
            if event.t < last.t {
                return Err(EventOrderError::OutOfOrder {
                    index: self.events.len(),
                });
            }
        }
        self.events.push(event);
        Ok(())
    }

    /// Returns the events with `t ∈ [from_us, to_us)` as a borrowed slice
    /// (binary search, O(log n)).
    pub fn window(&self, from_us: u64, to_us: u64) -> &[Event] {
        let lo = self.events.partition_point(|e| e.t.as_micros() < from_us);
        let hi = self.events.partition_point(|e| e.t.as_micros() < to_us);
        &self.events[lo..hi]
    }

    /// Splits the stream into consecutive fixed-duration windows of
    /// `window_us`, starting at the first event. The last partial window is
    /// included. Returns an empty vector for an empty stream.
    pub fn windows(&self, window_us: u64) -> Vec<&[Event]> {
        assert!(window_us > 0, "window must be positive");
        let Some(start) = self.start() else {
            return Vec::new();
        };
        // `start()` returned Some above, so the stream is non-empty and
        // `end()` must be Some as well.
        let Some(end) = self.end().map(|t| t.as_micros()) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut from = start.as_micros();
        while from <= end {
            out.push(self.window(from, from + window_us));
            from += window_us;
        }
        out
    }

    /// Returns a new stream containing only events matching the predicate.
    pub fn filtered<F: FnMut(&Event) -> bool>(&self, mut keep: F) -> EventStream {
        EventStream {
            width: self.width,
            height: self.height,
            events: self.events.iter().copied().filter(|e| keep(e)).collect(),
        }
    }

    /// Returns a new stream with all timestamps shifted so the first event is
    /// at t = 0. No-op for an empty stream.
    pub fn rebased(&self) -> EventStream {
        let Some(start) = self.start() else {
            return self.clone();
        };
        EventStream {
            width: self.width,
            height: self.height,
            events: self
                .events
                .iter()
                .map(|e| Event {
                    t: Timestamp::from_micros(e.t.saturating_since(start)),
                    ..*e
                })
                .collect(),
        }
    }

    /// Merges two streams of identical resolution into one sorted stream.
    ///
    /// # Panics
    ///
    /// Panics if the resolutions differ.
    pub fn merge(&self, other: &EventStream) -> EventStream {
        assert_eq!(
            self.resolution(),
            other.resolution(),
            "cannot merge streams of different resolution"
        );
        let mut events = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.events.len() && j < other.events.len() {
            if self.events[i].t <= other.events[j].t {
                events.push(self.events[i]);
                i += 1;
            } else {
                events.push(other.events[j]);
                j += 1;
            }
        }
        events.extend_from_slice(&self.events[i..]);
        events.extend_from_slice(&other.events[j..]);
        let merged = EventStream {
            width: self.width,
            height: self.height,
            events,
        };
        check::run(&merged);
        merged
    }

    /// Counts events of each polarity, returned as `(on, off)`.
    pub fn polarity_counts(&self) -> (usize, usize) {
        let on = self
            .events
            .iter()
            .filter(|e| e.polarity == Polarity::On)
            .count();
        (on, self.events.len() - on)
    }
}

/// Machine-checked form of the sortedness/bounds contract
/// ([`evlab_util::check`]): run by the bulk constructors and `merge`.
/// `push` is O(1) and validates incrementally through its typed error, so
/// it is exempt — a full scan there would make stream assembly quadratic
/// under `EVLAB_CHECK`.
impl Invariant for EventStream {
    fn invariant_name(&self) -> &'static str {
        "event-stream"
    }

    fn check_invariants(&self, r: &mut Report) {
        for (i, w) in self.events.windows(2).enumerate() {
            r.require(w[0].t <= w[1].t, || {
                format!(
                    "timestamps decrease at index {}: {} then {}",
                    i + 1,
                    w[0].t.as_micros(),
                    w[1].t.as_micros()
                )
            });
        }
        for (i, e) in self.events.iter().enumerate() {
            r.require(e.x < self.width && e.y < self.height, || {
                format!(
                    "event {i} at ({}, {}) outside the {}x{} sensor",
                    e.x, e.y, self.width, self.height
                )
            });
        }
    }
}

impl<'a> IntoIterator for &'a EventStream {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for EventStream {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventStream {
        EventStream::from_events(
            (16, 16),
            vec![
                Event::new(0, 1, 1, Polarity::On),
                Event::new(10, 2, 2, Polarity::Off),
                Event::new(10, 3, 3, Polarity::On),
                Event::new(25, 4, 4, Polarity::Off),
                Event::new(100, 5, 5, Polarity::On),
            ],
        )
        .expect("sorted")
    }

    #[test]
    fn construction_validates_order() {
        let err = EventStream::from_events(
            (8, 8),
            vec![Event::new(10, 0, 0, Polarity::On), Event::new(5, 0, 0, Polarity::On)],
        )
        .unwrap_err();
        assert_eq!(err, EventOrderError::OutOfOrder { index: 1 });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn construction_validates_bounds() {
        let err =
            EventStream::from_events((8, 8), vec![Event::new(0, 8, 0, Polarity::On)]).unwrap_err();
        assert!(matches!(err, EventOrderError::OutOfBounds { index: 0, .. }));
    }

    #[test]
    fn from_unsorted_sorts() {
        let s = EventStream::from_unsorted(
            (8, 8),
            vec![
                Event::new(30, 0, 0, Polarity::On),
                Event::new(10, 1, 1, Polarity::On),
                Event::new(20, 2, 2, Polarity::On),
            ],
        )
        .expect("in bounds");
        let ts: Vec<u64> = s.iter().map(|e| e.t.as_micros()).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn window_half_open() {
        let s = sample();
        let w = s.window(10, 25);
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|e| e.t.as_micros() == 10));
        assert_eq!(s.window(0, 101).len(), 5);
        assert_eq!(s.window(101, 200).len(), 0);
    }

    #[test]
    fn windows_cover_everything() {
        let s = sample();
        let windows = s.windows(30);
        let total: usize = windows.iter().map(|w| w.len()).sum();
        assert_eq!(total, s.len());
        // Duration 100us with 30us windows -> 4 windows (0,30,60,90 starts).
        assert_eq!(windows.len(), 4);
    }

    #[test]
    fn push_enforces_invariants() {
        let mut s = sample();
        assert!(s.push(Event::new(100, 0, 0, Polarity::On)).is_ok());
        assert!(s.push(Event::new(99, 0, 0, Polarity::On)).is_err());
        assert!(s.push(Event::new(200, 16, 0, Polarity::On)).is_err());
    }

    #[test]
    fn merge_interleaves_sorted() {
        let a = EventStream::from_events(
            (8, 8),
            vec![Event::new(0, 0, 0, Polarity::On), Event::new(20, 0, 0, Polarity::On)],
        )
        .expect("ok");
        let b = EventStream::from_events(
            (8, 8),
            vec![Event::new(10, 1, 1, Polarity::Off), Event::new(30, 1, 1, Polarity::Off)],
        )
        .expect("ok");
        let m = a.merge(&b);
        let ts: Vec<u64> = m.iter().map(|e| e.t.as_micros()).collect();
        assert_eq!(ts, vec![0, 10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "different resolution")]
    fn merge_rejects_mismatched_resolution() {
        let a = EventStream::new((8, 8));
        let b = EventStream::new((16, 16));
        let _ = a.merge(&b);
    }

    #[test]
    fn rebased_starts_at_zero() {
        let s = EventStream::from_events(
            (8, 8),
            vec![Event::new(50, 0, 0, Polarity::On), Event::new(80, 1, 1, Polarity::On)],
        )
        .expect("ok");
        let r = s.rebased();
        assert_eq!(r.start(), Some(Timestamp::ZERO));
        assert_eq!(r.duration_us(), 30);
    }

    #[test]
    fn rates_and_counts() {
        let s = sample();
        assert_eq!(s.duration_us(), 100);
        assert!((s.mean_rate_hz() - 50_000.0).abs() < 1e-6);
        assert_eq!(s.polarity_counts(), (3, 2));
    }

    #[test]
    fn filtered_keeps_resolution() {
        let s = sample();
        let on_only = s.filtered(|e| e.polarity == Polarity::On);
        assert_eq!(on_only.len(), 3);
        assert_eq!(on_only.resolution(), s.resolution());
    }

    #[test]
    fn empty_stream_edge_cases() {
        let s = EventStream::new((4, 4));
        assert!(s.is_empty());
        assert_eq!(s.start(), None);
        assert_eq!(s.duration_us(), 0);
        assert_eq!(s.mean_rate_hz(), 0.0);
        assert!(s.windows(10).is_empty());
    }
}
