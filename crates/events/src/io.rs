//! Binary event-stream serialization.
//!
//! A compact on-disk format in the spirit of AEDAT: a fixed header
//! (magic, version, resolution, count) followed by the 64-bit AER words of
//! the [`crate::aer::AerCodec`]. Write with [`write_stream`], read back with
//! [`read_stream`]; both take generic `Write`/`Read` values, so a `&mut
//! Vec<u8>` or a `&mut File` works equally (pass `&mut reader` to keep
//! ownership).

use crate::aer::{AerCodec, DecodeAerError};
use crate::stream::{EventOrderError, EventStream};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// File magic: `EVLB`.
pub const MAGIC: [u8; 4] = *b"EVLB";
/// Current format version.
pub const VERSION: u16 = 1;

/// Errors produced while reading a stream.
#[derive(Debug)]
pub enum ReadStreamError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes did not match.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// Unsupported format version.
    BadVersion {
        /// The version found.
        found: u16,
    },
    /// An AER word failed to decode.
    Decode(DecodeAerError),
    /// Decoded events were not time-ordered.
    Order(EventOrderError),
    /// The file ended mid-stream: the header promised more records than
    /// the payload holds (counted under `ingest.truncated`).
    Truncated {
        /// Records the header declared.
        expected: u64,
        /// Whole records actually present.
        got: u64,
    },
}

impl fmt::Display for ReadStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadStreamError::Io(e) => write!(f, "i/o error: {e}"),
            ReadStreamError::BadMagic { found } => {
                write!(f, "bad magic {found:?}, expected {MAGIC:?}")
            }
            ReadStreamError::BadVersion { found } => {
                write!(f, "unsupported version {found}")
            }
            ReadStreamError::Decode(e) => write!(f, "decode error: {e}"),
            ReadStreamError::Order(e) => write!(f, "order error: {e}"),
            ReadStreamError::Truncated { expected, got } => {
                write!(f, "truncated stream: header promised {expected} records, found {got}")
            }
        }
    }
}

impl Error for ReadStreamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadStreamError::Io(e) => Some(e),
            ReadStreamError::Decode(e) => Some(e),
            ReadStreamError::Order(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadStreamError {
    fn from(e: io::Error) -> Self {
        ReadStreamError::Io(e)
    }
}

impl From<ReadStreamError> for evlab_util::EvlabError {
    fn from(e: ReadStreamError) -> Self {
        evlab_util::EvlabError::read_stream(e)
    }
}

/// Serializes a stream. A `&mut` reference can be passed as the writer to
/// keep using it afterwards.
///
/// # Errors
///
/// Propagates I/O errors from the writer; a stream whose height exceeds
/// the AER y field yields an [`io::ErrorKind::InvalidInput`] error (with
/// the [`DecodeAerError`] as source) instead of panicking.
pub fn write_stream<W: Write>(stream: &EventStream, mut writer: W) -> io::Result<()> {
    let (w, h) = stream.resolution();
    let codec = AerCodec::try_new((w, h))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&w.to_le_bytes())?;
    writer.write_all(&h.to_le_bytes())?;
    writer.write_all(&(stream.len() as u64).to_le_bytes())?;
    for e in stream.iter() {
        writer.write_all(&codec.encode(e).to_le_bytes())?;
    }
    Ok(())
}

/// Deserializes a stream written by [`write_stream`]. A `&mut` reference
/// can be passed as the reader.
///
/// # Errors
///
/// Returns [`ReadStreamError`] on I/O failure, bad magic/version, AER
/// decode failure, or out-of-order events.
pub fn read_stream<R: Read>(mut reader: R) -> Result<EventStream, ReadStreamError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(ReadStreamError::BadMagic { found: magic });
    }
    let mut buf2 = [0u8; 2];
    reader.read_exact(&mut buf2)?;
    let version = u16::from_le_bytes(buf2);
    if version != VERSION {
        return Err(ReadStreamError::BadVersion { found: version });
    }
    reader.read_exact(&mut buf2)?;
    let w = u16::from_le_bytes(buf2);
    reader.read_exact(&mut buf2)?;
    let h = u16::from_le_bytes(buf2);
    let mut buf8 = [0u8; 8];
    reader.read_exact(&mut buf8)?;
    let count = u64::from_le_bytes(buf8);
    // A corrupted header must surface as a typed error, not a panic.
    let codec = AerCodec::try_new((w, h)).map_err(ReadStreamError::Decode)?;
    let mut events = Vec::with_capacity(count.min(1 << 24) as usize);
    for got in 0..count {
        // A file cut mid-stream (the classic half-written final record)
        // is a typed `Truncated` error, not a bare I/O failure: callers
        // can distinguish "disk broke" from "producer died mid-write",
        // and chaos runs count it under `ingest.truncated`.
        if let Err(e) = reader.read_exact(&mut buf8) {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                evlab_util::obs::counter_add("ingest.truncated", 1);
                return Err(ReadStreamError::Truncated {
                    expected: count,
                    got,
                });
            }
            return Err(ReadStreamError::Io(e));
        }
        let word = u64::from_le_bytes(buf8);
        events.push(codec.decode(word).map_err(ReadStreamError::Decode)?);
    }
    EventStream::from_events((w, h), events).map_err(ReadStreamError::Order)
}

/// Serialized size in bytes for a stream of `n` events.
pub fn encoded_size(n: usize) -> usize {
    4 + 2 + 2 + 2 + 8 + 8 * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Polarity};

    fn sample() -> EventStream {
        EventStream::from_events(
            (640, 480),
            (0..500u64)
                .map(|i| {
                    Event::new(
                        i * 17,
                        (i % 640) as u16,
                        (i % 480) as u16,
                        if i % 3 == 0 { Polarity::Off } else { Polarity::On },
                    )
                })
                .collect(),
        )
        .expect("valid")
    }

    #[test]
    fn round_trip() {
        let stream = sample();
        let mut buf = Vec::new();
        write_stream(&stream, &mut buf).expect("write");
        assert_eq!(buf.len(), encoded_size(stream.len()));
        let back = read_stream(buf.as_slice()).expect("read");
        assert_eq!(back, stream);
    }

    #[test]
    fn empty_stream_round_trips() {
        let stream = EventStream::new((8, 8));
        let mut buf = Vec::new();
        write_stream(&stream, &mut buf).expect("write");
        let back = read_stream(buf.as_slice()).expect("read");
        assert_eq!(back, stream);
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        buf[0] = b'X';
        match read_stream(buf.as_slice()) {
            Err(ReadStreamError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn bad_version_detected() {
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        buf[4] = 99;
        assert!(matches!(
            read_stream(buf.as_slice()),
            Err(ReadStreamError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn truncated_final_record_is_a_typed_error() {
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        // Cut 5 bytes into the final record: a half-written word.
        buf.truncate(buf.len() - 5);
        match read_stream(buf.as_slice()) {
            Err(ReadStreamError::Truncated { expected: 500, got: 499 }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncation_at_record_boundary_is_detected() {
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        // Drop the last 3 records entirely: the count field still
        // promises 500, so acceptance without error would silently lose
        // the tail.
        buf.truncate(buf.len() - 3 * 8);
        match read_stream(buf.as_slice()) {
            Err(ReadStreamError::Truncated { expected: 500, got: 497 }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_counted_in_obs() {
        evlab_util::obs::set_enabled(true);
        let before = evlab_util::obs::counter_value("ingest.truncated");
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        buf.truncate(buf.len() - 1);
        let _ = read_stream(buf.as_slice());
        assert_eq!(
            evlab_util::obs::counter_value("ingest.truncated"),
            before + 1
        );
        evlab_util::obs::set_enabled(false);
    }

    #[test]
    fn corrupted_address_detected() {
        let small = EventStream::from_events(
            (4, 4),
            vec![Event::new(0, 1, 1, Polarity::On)],
        )
        .expect("valid");
        let mut buf = Vec::new();
        write_stream(&small, &mut buf).expect("write");
        // Overwrite the event word with an out-of-range x address.
        let word = AerCodec::new((640, 480)).encode(&Event::new(0, 600, 1, Polarity::On));
        let n = buf.len();
        buf[n - 8..].copy_from_slice(&word.to_le_bytes());
        assert!(matches!(
            read_stream(buf.as_slice()),
            Err(ReadStreamError::Decode(_))
        ));
    }

    #[test]
    fn corrupted_height_is_a_typed_error_not_a_panic() {
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        // Overwrite the height field with a value outside the 15-bit field.
        buf[8..10].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            read_stream(buf.as_slice()),
            Err(ReadStreamError::Decode(DecodeAerError::HeightOutOfRange { .. }))
        ));
    }

    #[test]
    fn oversized_stream_height_fails_write_typed() {
        let tall = EventStream::new((4, u16::MAX));
        let mut buf = Vec::new();
        let err = write_stream(&tall, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn read_errors_convert_to_evlab_error() {
        let e: evlab_util::EvlabError = ReadStreamError::BadVersion { found: 9 }.into();
        assert!(e.to_string().contains("unsupported version 9"));
    }

    #[test]
    fn error_messages_are_nonempty() {
        let e = ReadStreamError::BadMagic { found: [0; 4] };
        assert!(!e.to_string().is_empty());
    }
}
