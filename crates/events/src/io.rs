//! Binary event-stream serialization.
//!
//! A compact on-disk format in the spirit of AEDAT: a fixed header
//! (magic, version, resolution, count) followed by the 64-bit AER words of
//! the [`crate::aer::AerCodec`]. Write with [`write_stream`], read back with
//! [`read_stream`]; both take generic `Write`/`Read` values, so a `&mut
//! Vec<u8>` or a `&mut File` works equally (pass `&mut reader` to keep
//! ownership).

use crate::aer::{AerCodec, DecodeAerError};
use crate::stream::{EventOrderError, EventStream};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// File magic: `EVLB`.
pub const MAGIC: [u8; 4] = *b"EVLB";
/// Current format version.
pub const VERSION: u16 = 1;

/// Errors produced while reading a stream.
#[derive(Debug)]
pub enum ReadStreamError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes did not match.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// Unsupported format version.
    BadVersion {
        /// The version found.
        found: u16,
    },
    /// An AER word failed to decode.
    Decode(DecodeAerError),
    /// Decoded events were not time-ordered.
    Order(EventOrderError),
    /// The file ended mid-stream (counted under `ingest.truncated`):
    /// either the header promised more records than the payload holds,
    /// or the file ended inside the header itself (both fields 0 then —
    /// no record count was recoverable).
    Truncated {
        /// Records the header declared (0 when the header itself was cut).
        expected: u64,
        /// Whole records actually present.
        got: u64,
    },
}

impl fmt::Display for ReadStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadStreamError::Io(e) => write!(f, "i/o error: {e}"),
            ReadStreamError::BadMagic { found } => {
                write!(f, "bad magic {found:?}, expected {MAGIC:?}")
            }
            ReadStreamError::BadVersion { found } => {
                write!(f, "unsupported version {found}")
            }
            ReadStreamError::Decode(e) => write!(f, "decode error: {e}"),
            ReadStreamError::Order(e) => write!(f, "order error: {e}"),
            ReadStreamError::Truncated { expected, got } => {
                write!(f, "truncated stream: header promised {expected} records, found {got}")
            }
        }
    }
}

impl Error for ReadStreamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadStreamError::Io(e) => Some(e),
            ReadStreamError::Decode(e) => Some(e),
            ReadStreamError::Order(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadStreamError {
    fn from(e: io::Error) -> Self {
        ReadStreamError::Io(e)
    }
}

impl From<ReadStreamError> for evlab_util::EvlabError {
    fn from(e: ReadStreamError) -> Self {
        evlab_util::EvlabError::read_stream(e)
    }
}

/// Serializes a stream. A `&mut` reference can be passed as the writer to
/// keep using it afterwards.
///
/// # Errors
///
/// Propagates I/O errors from the writer; a stream whose height exceeds
/// the AER y field yields an [`io::ErrorKind::InvalidInput`] error (with
/// the [`DecodeAerError`] as source) instead of panicking.
pub fn write_stream<W: Write>(stream: &EventStream, mut writer: W) -> io::Result<()> {
    let (w, h) = stream.resolution();
    let codec = AerCodec::try_new((w, h))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&w.to_le_bytes())?;
    writer.write_all(&h.to_le_bytes())?;
    writer.write_all(&(stream.len() as u64).to_le_bytes())?;
    for e in stream.iter() {
        writer.write_all(&codec.encode(e).to_le_bytes())?;
    }
    Ok(())
}

/// Reads `buf.len()` bytes, mapping an EOF to the typed `Truncated`
/// error: a file cut anywhere — even inside the header — means the
/// producer died mid-write, which callers must be able to distinguish
/// from "disk broke" ([`ReadStreamError::Io`]). Counted under
/// `ingest.truncated`.
fn read_exact_or_truncated<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    expected: u64,
    got: u64,
) -> Result<(), ReadStreamError> {
    if let Err(e) = reader.read_exact(buf) {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            evlab_util::obs::counter_add("ingest.truncated", 1);
            return Err(ReadStreamError::Truncated { expected, got });
        }
        return Err(ReadStreamError::Io(e));
    }
    Ok(())
}

/// Parses and validates the fixed header, returning the codec and the
/// declared record count.
fn read_header<R: Read>(reader: &mut R) -> Result<(AerCodec, u64), ReadStreamError> {
    let mut magic = [0u8; 4];
    read_exact_or_truncated(reader, &mut magic, 0, 0)?;
    if magic != MAGIC {
        return Err(ReadStreamError::BadMagic { found: magic });
    }
    let mut buf2 = [0u8; 2];
    read_exact_or_truncated(reader, &mut buf2, 0, 0)?;
    let version = u16::from_le_bytes(buf2);
    if version != VERSION {
        return Err(ReadStreamError::BadVersion { found: version });
    }
    read_exact_or_truncated(reader, &mut buf2, 0, 0)?;
    let w = u16::from_le_bytes(buf2);
    read_exact_or_truncated(reader, &mut buf2, 0, 0)?;
    let h = u16::from_le_bytes(buf2);
    let mut buf8 = [0u8; 8];
    read_exact_or_truncated(reader, &mut buf8, 0, 0)?;
    let count = u64::from_le_bytes(buf8);
    // A corrupted header must surface as a typed error, not a panic.
    let codec = AerCodec::try_new((w, h)).map_err(ReadStreamError::Decode)?;
    Ok((codec, count))
}

/// Deserializes a stream written by [`write_stream`]. A `&mut` reference
/// can be passed as the reader.
///
/// # Errors
///
/// Returns [`ReadStreamError`] on I/O failure, bad magic/version, AER
/// decode failure, out-of-order events, or a file cut short anywhere —
/// a truncation inside the header or mid-record is the typed
/// [`ReadStreamError::Truncated`], never a panic or a bare EOF.
pub fn read_stream<R: Read>(mut reader: R) -> Result<EventStream, ReadStreamError> {
    let (codec, count) = read_header(&mut reader)?;
    let (w, h) = codec.resolution();
    let mut buf8 = [0u8; 8];
    let mut events = Vec::with_capacity(count.min(1 << 24) as usize);
    for got in 0..count {
        // The classic half-written final record lands here.
        read_exact_or_truncated(&mut reader, &mut buf8, count, got)?;
        let word = u64::from_le_bytes(buf8);
        events.push(codec.decode(word).map_err(ReadStreamError::Decode)?);
    }
    EventStream::from_events((w, h), events).map_err(ReadStreamError::Order)
}

/// Salvage read: deserializes as much of a stream as is intact, returning
/// the clean prefix of events together with the error (if any) that
/// stopped reading — the recovery-path sibling of [`read_stream`], for
/// callers that want the surviving events of a torn file instead of
/// nothing.
///
/// The returned prefix holds exactly the records that decoded cleanly
/// before the failure point; a truncated or corrupt tail never
/// manufactures a phantom event.
///
/// # Errors
///
/// A header too damaged to establish the resolution (bad magic/version,
/// truncation inside the header, undecodable geometry) or an ordering
/// violation *within* the salvaged prefix is a hard error — there is no
/// meaningful prefix to salvage then.
pub fn read_stream_prefix<R: Read>(
    mut reader: R,
) -> Result<(EventStream, Option<ReadStreamError>), ReadStreamError> {
    let (codec, count) = read_header(&mut reader)?;
    let (w, h) = codec.resolution();
    let mut buf8 = [0u8; 8];
    let mut events = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut tail_error = None;
    for got in 0..count {
        if let Err(e) = read_exact_or_truncated(&mut reader, &mut buf8, count, got) {
            tail_error = Some(e);
            break;
        }
        let word = u64::from_le_bytes(buf8);
        match codec.decode(word) {
            Ok(event) => events.push(event),
            Err(e) => {
                tail_error = Some(ReadStreamError::Decode(e));
                break;
            }
        }
    }
    let stream = EventStream::from_events((w, h), events).map_err(ReadStreamError::Order)?;
    Ok((stream, tail_error))
}

/// Serialized size in bytes for a stream of `n` events.
pub fn encoded_size(n: usize) -> usize {
    4 + 2 + 2 + 2 + 8 + 8 * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Polarity};

    fn sample() -> EventStream {
        EventStream::from_events(
            (640, 480),
            (0..500u64)
                .map(|i| {
                    Event::new(
                        i * 17,
                        (i % 640) as u16,
                        (i % 480) as u16,
                        if i % 3 == 0 { Polarity::Off } else { Polarity::On },
                    )
                })
                .collect(),
        )
        .expect("valid")
    }

    #[test]
    fn round_trip() {
        let stream = sample();
        let mut buf = Vec::new();
        write_stream(&stream, &mut buf).expect("write");
        assert_eq!(buf.len(), encoded_size(stream.len()));
        let back = read_stream(buf.as_slice()).expect("read");
        assert_eq!(back, stream);
    }

    #[test]
    fn empty_stream_round_trips() {
        let stream = EventStream::new((8, 8));
        let mut buf = Vec::new();
        write_stream(&stream, &mut buf).expect("write");
        let back = read_stream(buf.as_slice()).expect("read");
        assert_eq!(back, stream);
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        buf[0] = b'X';
        match read_stream(buf.as_slice()) {
            Err(ReadStreamError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn bad_version_detected() {
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        buf[4] = 99;
        assert!(matches!(
            read_stream(buf.as_slice()),
            Err(ReadStreamError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn truncated_final_record_is_a_typed_error() {
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        // Cut 5 bytes into the final record: a half-written word.
        buf.truncate(buf.len() - 5);
        match read_stream(buf.as_slice()) {
            Err(ReadStreamError::Truncated { expected: 500, got: 499 }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncation_at_record_boundary_is_detected() {
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        // Drop the last 3 records entirely: the count field still
        // promises 500, so acceptance without error would silently lose
        // the tail.
        buf.truncate(buf.len() - 3 * 8);
        match read_stream(buf.as_slice()) {
            Err(ReadStreamError::Truncated { expected: 500, got: 497 }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_counted_in_obs() {
        evlab_util::obs::set_enabled(true);
        let before = evlab_util::obs::counter_value("ingest.truncated");
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        buf.truncate(buf.len() - 1);
        let _ = read_stream(buf.as_slice());
        assert_eq!(
            evlab_util::obs::counter_value("ingest.truncated"),
            before + 1
        );
        evlab_util::obs::set_enabled(false);
    }

    #[test]
    fn truncation_inside_header_is_a_typed_error() {
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        // Every cut inside the 18-byte header — including the empty file —
        // is the typed Truncated error, never a bare I/O EOF.
        for cut in 0..encoded_size(0) {
            match read_stream(&buf[..cut]) {
                Err(ReadStreamError::Truncated { expected: 0, got: 0 }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn prefix_read_salvages_clean_events() {
        let stream = sample();
        let mut buf = Vec::new();
        write_stream(&stream, &mut buf).expect("write");
        // Cut 3 bytes into record 498: records 0..498 are intact.
        buf.truncate(encoded_size(498) + 3);
        let (prefix, err) = read_stream_prefix(buf.as_slice()).expect("header intact");
        assert_eq!(prefix.len(), 498);
        assert_eq!(prefix.as_slice(), &stream.as_slice()[..498]);
        assert!(matches!(
            err,
            Some(ReadStreamError::Truncated { expected: 500, got: 498 })
        ));
        // An undamaged file salvages completely with no tail error.
        let mut full = Vec::new();
        write_stream(&stream, &mut full).expect("write");
        let (all, err) = read_stream_prefix(full.as_slice()).expect("header intact");
        assert_eq!(all, stream);
        assert!(err.is_none());
    }

    #[test]
    fn prefix_read_stops_at_undecodable_word() {
        let small = EventStream::from_events(
            (4, 4),
            vec![
                Event::new(0, 1, 1, Polarity::On),
                Event::new(5, 2, 2, Polarity::Off),
            ],
        )
        .expect("valid");
        let mut buf = Vec::new();
        write_stream(&small, &mut buf).expect("write");
        // Corrupt the second word's x address out of range.
        let bad = AerCodec::new((640, 480)).encode(&Event::new(5, 600, 1, Polarity::On));
        let n = buf.len();
        buf[n - 8..].copy_from_slice(&bad.to_le_bytes());
        let (prefix, err) = read_stream_prefix(buf.as_slice()).expect("header intact");
        assert_eq!(prefix.len(), 1, "only the clean first event survives");
        assert!(matches!(err, Some(ReadStreamError::Decode(_))));
    }

    #[test]
    fn corrupted_address_detected() {
        let small = EventStream::from_events(
            (4, 4),
            vec![Event::new(0, 1, 1, Polarity::On)],
        )
        .expect("valid");
        let mut buf = Vec::new();
        write_stream(&small, &mut buf).expect("write");
        // Overwrite the event word with an out-of-range x address.
        let word = AerCodec::new((640, 480)).encode(&Event::new(0, 600, 1, Polarity::On));
        let n = buf.len();
        buf[n - 8..].copy_from_slice(&word.to_le_bytes());
        assert!(matches!(
            read_stream(buf.as_slice()),
            Err(ReadStreamError::Decode(_))
        ));
    }

    #[test]
    fn corrupted_height_is_a_typed_error_not_a_panic() {
        let mut buf = Vec::new();
        write_stream(&sample(), &mut buf).expect("write");
        // Overwrite the height field with a value outside the 15-bit field.
        buf[8..10].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            read_stream(buf.as_slice()),
            Err(ReadStreamError::Decode(DecodeAerError::HeightOutOfRange { .. }))
        ));
    }

    #[test]
    fn oversized_stream_height_fails_write_typed() {
        let tall = EventStream::new((4, u16::MAX));
        let mut buf = Vec::new();
        let err = write_stream(&tall, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn read_errors_convert_to_evlab_error() {
        let e: evlab_util::EvlabError = ReadStreamError::BadVersion { found: 9 }.into();
        assert!(e.to_string().contains("unsupported version 9"));
    }

    #[test]
    fn error_messages_are_nonempty() {
        let e = ReadStreamError::BadMagic { found: [0; 4] };
        assert!(!e.to_string().is_empty());
    }
}
