//! Address-Event Representation (AER) codec and bus model.
//!
//! Events leave the sensor die over a time-multiplexed digital bus using the
//! AER protocol. This module provides:
//!
//! * [`AerCodec`] — packs an [`Event`] into a fixed-width word (address +
//!   polarity, with either an absolute coarse timestamp or a delta-time
//!   field) and unpacks it again.
//! * [`AerBus`] — a finite-bandwidth bus with a FIFO: when the instantaneous
//!   event rate exceeds the readout throughput, events are delayed
//!   (timestamped later) and eventually dropped when the FIFO overflows.
//!   This reproduces the readout saturation behaviour that motivates the
//!   GEPS-class readout systems of §II and the event-rate controllers
//!   of [Finateu et al. 2020].

use crate::event::{Event, Polarity, Timestamp};
use std::error::Error;
use std::fmt;

/// Errors produced when configuring the codec or decoding AER words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeAerError {
    /// The x field exceeds the configured width.
    XOutOfRange {
        /// Decoded x value.
        x: u16,
    },
    /// The y field exceeds the configured height.
    YOutOfRange {
        /// Decoded y value.
        y: u16,
    },
    /// The sensor height does not fit the 15-bit AER y field.
    HeightOutOfRange {
        /// Offending sensor height.
        height: u16,
    },
}

impl fmt::Display for DecodeAerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeAerError::XOutOfRange { x } => write!(f, "decoded x {x} outside sensor width"),
            DecodeAerError::YOutOfRange { y } => write!(f, "decoded y {y} outside sensor height"),
            DecodeAerError::HeightOutOfRange { height } => {
                write!(f, "sensor height {height} exceeds the 15-bit AER y field")
            }
        }
    }
}

impl Error for DecodeAerError {}

impl From<DecodeAerError> for evlab_util::EvlabError {
    fn from(e: DecodeAerError) -> Self {
        evlab_util::EvlabError::decode_aer(e)
    }
}

/// Packs events into 64-bit AER words: `[timestamp:32 | y:15 | x:16 | p:1]`.
///
/// Real sensors use 32–40 bit words with wrapped timestamps; we keep a 32-bit
/// microsecond timestamp field (wrapping every ~71 minutes) plus full
/// addresses so the codec stays lossless for any supported resolution while
/// still exposing a realistic bits-per-event figure through
/// [`AerCodec::bits_per_event`].
///
/// # Examples
///
/// ```
/// use evlab_events::aer::AerCodec;
/// use evlab_events::{Event, Polarity};
///
/// let codec = AerCodec::new((1280, 720));
/// let e = Event::new(123, 640, 360, Polarity::On);
/// let word = codec.encode(&e);
/// assert_eq!(codec.decode(word)?, e);
/// # Ok::<(), evlab_events::aer::DecodeAerError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AerCodec {
    width: u16,
    height: u16,
}

const TS_BITS: u32 = 32;
const Y_BITS: u32 = 15;
const X_BITS: u32 = 16;

impl AerCodec {
    /// Creates a codec for a sensor of the given `(width, height)`.
    ///
    /// # Panics
    ///
    /// Panics if the height does not fit the 15-bit y field; use
    /// [`AerCodec::try_new`] for untrusted resolutions.
    // Documented panic contract for trusted (compile-time) resolutions;
    // every ingestion path that sees untrusted data goes through try_new.
    #[allow(clippy::expect_used)]
    pub fn new(resolution: (u16, u16)) -> Self {
        Self::try_new(resolution).expect("height exceeds AER y field")
    }

    /// Fallible constructor for untrusted resolutions (e.g. headers read
    /// from disk).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeAerError::HeightOutOfRange`] if the height does not
    /// fit the 15-bit y field.
    pub fn try_new(resolution: (u16, u16)) -> Result<Self, DecodeAerError> {
        if (resolution.1 as u32) >= (1 << Y_BITS) {
            return Err(DecodeAerError::HeightOutOfRange {
                height: resolution.1,
            });
        }
        Ok(AerCodec {
            width: resolution.0,
            height: resolution.1,
        })
    }

    /// The `(width, height)` the codec validates addresses against.
    pub fn resolution(&self) -> (u16, u16) {
        (self.width, self.height)
    }

    /// Encodes one event into a 64-bit word. The timestamp wraps at 2³² µs.
    pub fn encode(&self, event: &Event) -> u64 {
        let ts = event.t.as_micros() & 0xFFFF_FFFF;
        (ts << (Y_BITS + X_BITS + 1))
            | ((event.y as u64) << (X_BITS + 1))
            | ((event.x as u64) << 1)
            | event.polarity.bit()
    }

    /// Decodes a 64-bit word back into an event.
    ///
    /// # Errors
    ///
    /// Returns an error if the address fields exceed the sensor resolution.
    pub fn decode(&self, word: u64) -> Result<Event, DecodeAerError> {
        let polarity = Polarity::from_bit(word);
        let x = ((word >> 1) & ((1 << X_BITS) - 1)) as u16;
        let y = ((word >> (X_BITS + 1)) & ((1 << Y_BITS) - 1)) as u16;
        let ts = word >> (Y_BITS + X_BITS + 1);
        if x >= self.width {
            return Err(DecodeAerError::XOutOfRange { x });
        }
        if y >= self.height {
            return Err(DecodeAerError::YOutOfRange { y });
        }
        Ok(Event {
            t: Timestamp::from_micros(ts),
            x,
            y,
            polarity,
        })
    }

    /// Nominal payload size of one encoded event in bits.
    pub fn bits_per_event(&self) -> u32 {
        TS_BITS + Y_BITS + X_BITS + 1
    }

    /// Encodes a batch of events.
    pub fn encode_all(&self, events: &[Event]) -> Vec<u64> {
        events.iter().map(|e| self.encode(e)).collect()
    }

    /// Decodes a batch of words, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DecodeAerError`].
    pub fn decode_all(&self, words: &[u64]) -> Result<Vec<Event>, DecodeAerError> {
        words.iter().map(|&w| self.decode(w)).collect()
    }

    /// Decodes a batch of possibly-corrupt words, quarantining malformed
    /// ones instead of failing the batch — the ingestion-side posture: a
    /// flipped bit on the bus costs one event, not the stream. Quarantined
    /// words are counted under the `ingest.quarantined` obs counter.
    pub fn decode_lossy(&self, words: &[u64]) -> LossyDecode {
        let mut events = Vec::with_capacity(words.len());
        let mut quarantined = 0usize;
        let mut first_error = None;
        for &w in words {
            match self.decode(w) {
                Ok(e) => events.push(e),
                Err(e) => {
                    quarantined += 1;
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if quarantined > 0 {
            evlab_util::obs::counter_add("ingest.quarantined", quarantined as u64);
        }
        LossyDecode {
            events,
            quarantined,
            first_error,
        }
    }
}

/// Outcome of [`AerCodec::decode_lossy`]: the decodable events plus an
/// account of what was quarantined.
#[derive(Debug, Clone, PartialEq)]
pub struct LossyDecode {
    /// Events that decoded cleanly, in input order.
    pub events: Vec<Event>,
    /// Words rejected by the decoder.
    pub quarantined: usize,
    /// The first decode failure, for diagnostics.
    pub first_error: Option<DecodeAerError>,
}

/// Outcome of pushing a stream through an [`AerBus`].
#[derive(Debug, Clone, PartialEq)]
pub struct BusTransfer {
    /// Events as observed on the far side of the bus (possibly delayed).
    pub delivered: Vec<Event>,
    /// Number of events dropped to FIFO overflow.
    pub dropped: usize,
    /// Worst event delay through the FIFO, in microseconds.
    pub max_delay_us: u64,
}

impl BusTransfer {
    /// Fraction of offered events that were dropped.
    pub fn drop_rate(&self, offered: usize) -> f64 {
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }
}

/// A finite-throughput AER readout bus with a bounded FIFO.
///
/// Models the arbitrated readout path of an event sensor: each event needs
/// `1/throughput` seconds of bus time; events arriving while the bus is busy
/// queue in a FIFO of `fifo_depth` entries and are re-timestamped with their
/// delivery time; events arriving into a full FIFO are dropped.
///
/// # Examples
///
/// ```
/// use evlab_events::aer::AerBus;
/// use evlab_events::{Event, EventStream, Polarity};
///
/// // 1 Mevent/s bus, 4-deep FIFO.
/// let bus = AerBus::new(1_000_000.0, 4);
/// let stream = EventStream::from_events(
///     (8, 8),
///     (0..8).map(|i| Event::new(i, 0, 0, Polarity::On)).collect(),
/// )?;
/// let out = bus.transfer(&stream);
/// assert!(out.delivered.len() + out.dropped == 8);
/// # Ok::<(), evlab_events::EventOrderError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AerBus {
    throughput_eps: f64,
    fifo_depth: usize,
}

impl AerBus {
    /// Creates a bus with `throughput_eps` events/second and a FIFO holding
    /// `fifo_depth` events.
    ///
    /// # Panics
    ///
    /// Panics if `throughput_eps` is not strictly positive.
    pub fn new(throughput_eps: f64, fifo_depth: usize) -> Self {
        assert!(throughput_eps > 0.0, "throughput must be positive");
        AerBus {
            throughput_eps,
            fifo_depth,
        }
    }

    /// Bus throughput in events per second.
    pub fn throughput_eps(&self) -> f64 {
        self.throughput_eps
    }

    /// Service time per event in microseconds.
    pub fn service_time_us(&self) -> f64 {
        1e6 / self.throughput_eps
    }

    /// Pushes a stream through the bus, returning delivered (re-timestamped)
    /// events, the drop count and the worst-case delay.
    pub fn transfer(&self, stream: &crate::stream::EventStream) -> BusTransfer {
        let service = self.service_time_us();
        // Time at which the bus becomes free, in exact (fractional) us.
        let mut bus_free_at = 0.0f64;
        let mut delivered = Vec::with_capacity(stream.len());
        let mut dropped = 0usize;
        let mut max_delay_us = 0u64;
        for e in stream.iter() {
            let arrival = e.t.as_micros() as f64;
            // Queue occupancy: how many service slots are pending ahead of
            // this event when it arrives.
            let backlog = ((bus_free_at - arrival) / service).ceil().max(0.0) as usize;
            if backlog > self.fifo_depth {
                dropped += 1;
                continue;
            }
            let start = bus_free_at.max(arrival);
            bus_free_at = start + service;
            let depart = bus_free_at;
            let delay = (depart - arrival).max(0.0).round() as u64;
            max_delay_us = max_delay_us.max(delay);
            delivered.push(Event {
                t: Timestamp::from_micros(depart.round() as u64),
                ..*e
            });
        }
        BusTransfer {
            delivered,
            dropped,
            max_delay_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::EventStream;

    #[test]
    fn codec_round_trip_extremes() {
        let codec = AerCodec::new((1280, 720));
        for e in [
            Event::new(0, 0, 0, Polarity::Off),
            Event::new(u32::MAX as u64, 1279, 719, Polarity::On),
            Event::new(42, 640, 0, Polarity::On),
        ] {
            assert_eq!(codec.decode(codec.encode(&e)).expect("round trip"), e);
        }
    }

    #[test]
    fn codec_rejects_out_of_range_addresses() {
        let small = AerCodec::new((4, 4));
        let big = AerCodec::new((1280, 720));
        let word = big.encode(&Event::new(0, 100, 2, Polarity::On));
        assert_eq!(
            small.decode(word),
            Err(DecodeAerError::XOutOfRange { x: 100 })
        );
        let word = big.encode(&Event::new(0, 2, 100, Polarity::On));
        assert_eq!(
            small.decode(word),
            Err(DecodeAerError::YOutOfRange { y: 100 })
        );
    }

    #[test]
    fn try_new_rejects_oversized_height() {
        assert!(matches!(
            AerCodec::try_new((16, u16::MAX)),
            Err(DecodeAerError::HeightOutOfRange { height: u16::MAX })
        ));
        assert!(AerCodec::try_new((16, 0x7FFF - 1)).is_ok());
    }

    #[test]
    fn timestamp_wraps_at_32_bits() {
        let codec = AerCodec::new((8, 8));
        let e = Event::new((1u64 << 32) + 5, 1, 1, Polarity::On);
        let decoded = codec.decode(codec.encode(&e)).expect("decode");
        assert_eq!(decoded.t.as_micros(), 5);
    }

    #[test]
    fn bits_per_event_is_fixed() {
        assert_eq!(AerCodec::new((8, 8)).bits_per_event(), 64);
    }

    #[test]
    fn batch_round_trip() {
        let codec = AerCodec::new((64, 64));
        let events: Vec<Event> = (0..100)
            .map(|i| Event::new(i * 3, (i % 64) as u16, (i % 64) as u16, Polarity::from_bit(i)))
            .collect();
        let words = codec.encode_all(&events);
        assert_eq!(codec.decode_all(&words).expect("ok"), events);
    }

    #[test]
    fn decode_lossy_quarantines_bad_words() {
        let codec = AerCodec::new((4, 4));
        let big = AerCodec::new((1280, 720));
        let good = codec.encode(&Event::new(10, 1, 2, Polarity::On));
        let bad_x = big.encode(&Event::new(20, 600, 1, Polarity::On));
        let bad_y = big.encode(&Event::new(30, 1, 600, Polarity::Off));
        let out = codec.decode_lossy(&[good, bad_x, bad_y, good]);
        assert_eq!(out.events.len(), 2);
        assert_eq!(out.quarantined, 2);
        assert!(matches!(
            out.first_error,
            Some(DecodeAerError::XOutOfRange { x: 600 })
        ));
        // A fully clean batch quarantines nothing.
        let clean = codec.decode_lossy(&[good, good]);
        assert_eq!(clean.quarantined, 0);
        assert!(clean.first_error.is_none());
    }

    #[test]
    fn fast_bus_delivers_everything_untouched() {
        let bus = AerBus::new(1e9, 16);
        let stream = EventStream::from_events(
            (8, 8),
            (0..50).map(|i| Event::new(i * 100, 0, 0, Polarity::On)).collect(),
        )
        .expect("ok");
        let out = bus.transfer(&stream);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.delivered.len(), 50);
        // Sub-us service time rounds away.
        assert!(out.max_delay_us <= 1);
    }

    #[test]
    fn slow_bus_drops_when_fifo_overflows() {
        // 10k events/s bus = 100us per event; burst of 100 events at t=0.
        let bus = AerBus::new(10_000.0, 8);
        let stream = EventStream::from_events(
            (8, 8),
            (0..100).map(|_| Event::new(0, 0, 0, Polarity::On)).collect(),
        )
        .expect("ok");
        let out = bus.transfer(&stream);
        assert!(out.dropped > 80, "dropped {}", out.dropped);
        assert!(out.delivered.len() <= 10);
        assert!(out.max_delay_us >= 100);
    }

    #[test]
    fn delivered_events_remain_sorted() {
        let bus = AerBus::new(50_000.0, 32);
        let stream = EventStream::from_events(
            (8, 8),
            (0..200).map(|i| Event::new(i / 4, 0, 0, Polarity::On)).collect(),
        )
        .expect("ok");
        let out = bus.transfer(&stream);
        for pair in out.delivered.windows(2) {
            assert!(pair[0].t <= pair[1].t);
        }
    }

    #[test]
    fn drop_rate_helper() {
        let t = BusTransfer {
            delivered: vec![],
            dropped: 5,
            max_delay_us: 0,
        };
        assert_eq!(t.drop_rate(10), 0.5);
        assert_eq!(t.drop_rate(0), 0.0);
    }
}
