//! In-sensor event-rate mitigation strategies (paper §II).
//!
//! High-resolution event sensors can emit overwhelming rates under egomotion.
//! The paper reviews four mitigation families, all implemented here:
//!
//! * [`SpatialDownsampler`] — block-wise address decimation with per-block
//!   rate limiting ([Bouvier et al. 2021]).
//! * [`EventRateController`] — a global token-bucket rate limiter, as in the
//!   programmable event-rate controller of [Finateu et al. 2020].
//! * [`FoveationMask`] — electronically foveated pixels: full resolution in a
//!   region of interest, decimation outside ([Serrano-Gotarredona 2022]).
//! * [`CenterSurroundFilter`] — a spatial band-pass that suppresses events in
//!   uniformly-active regions ([Delbruck et al. 2022]).

use crate::event::Event;
use crate::stream::EventStream;

/// Block-wise spatial downsampler.
///
/// Divides the array into `factor × factor` blocks; each block forwards at
/// most one event per `block_dead_time_us`, remapped to the block address at
/// reduced resolution.
///
/// # Examples
///
/// ```
/// use evlab_events::downsample::SpatialDownsampler;
/// use evlab_events::{Event, EventStream, Polarity};
///
/// let s = EventStream::from_events(
///     (8, 8),
///     vec![
///         Event::new(0, 0, 0, Polarity::On),
///         Event::new(1, 1, 1, Polarity::On), // same 2x2 block, merged away
///         Event::new(2, 4, 4, Polarity::On),
///     ],
/// )?;
/// let out = SpatialDownsampler::new(2, 100).apply(&s);
/// assert_eq!(out.resolution(), (4, 4));
/// assert_eq!(out.len(), 2);
/// # Ok::<(), evlab_events::EventOrderError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialDownsampler {
    factor: u16,
    block_dead_time_us: u64,
}

impl SpatialDownsampler {
    /// Creates a downsampler merging `factor × factor` pixel blocks, with at
    /// most one output event per block per `block_dead_time_us`.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(factor: u16, block_dead_time_us: u64) -> Self {
        assert!(factor > 0, "factor must be positive");
        SpatialDownsampler {
            factor,
            block_dead_time_us,
        }
    }

    /// Output resolution for a given input resolution (ceiling division).
    pub fn output_resolution(&self, input: (u16, u16)) -> (u16, u16) {
        (
            input.0.div_ceil(self.factor),
            input.1.div_ceil(self.factor),
        )
    }

    /// Applies the downsampler.
    // Interior invariant: the input stream is sorted and block addresses
    // are within the ceiling-divided output resolution, so push cannot
    // fail — the expect documents the invariant rather than handling
    // untrusted input.
    #[allow(clippy::expect_used)]
    pub fn apply(&self, stream: &EventStream) -> EventStream {
        let out_res = self.output_resolution(stream.resolution());
        let mut last: Vec<Option<u64>> = vec![None; out_res.0 as usize * out_res.1 as usize];
        let mut out = EventStream::new(out_res);
        for e in stream.iter() {
            let bx = e.x / self.factor;
            let by = e.y / self.factor;
            let idx = by as usize * out_res.0 as usize + bx as usize;
            let keep = match last[idx] {
                Some(prev) => e.t.as_micros().saturating_sub(prev) >= self.block_dead_time_us,
                None => true,
            };
            if keep {
                last[idx] = Some(e.t.as_micros());
                out.push(Event {
                    x: bx,
                    y: by,
                    ..*e
                })
                .expect("downsampler preserves order and bounds");
            }
        }
        out
    }
}

/// Global token-bucket event-rate controller.
///
/// Tokens refill at `max_rate_eps` events/second up to `burst` tokens; each
/// forwarded event consumes one token, and events arriving with an empty
/// bucket are dropped. This is the behaviour of the programmable event-rate
/// controller integrated in GEPS-class readout pipelines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRateController {
    max_rate_eps: f64,
    burst: f64,
}

impl EventRateController {
    /// Creates a controller with sustained rate `max_rate_eps` and burst
    /// capacity `burst` events.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate_eps <= 0` or `burst < 1`.
    pub fn new(max_rate_eps: f64, burst: usize) -> Self {
        assert!(max_rate_eps > 0.0, "rate must be positive");
        assert!(burst >= 1, "burst must be at least 1");
        EventRateController {
            max_rate_eps,
            burst: burst as f64,
        }
    }

    /// Applies the controller, returning `(kept, dropped_count)`.
    // Interior invariant: output events are an order-preserving subset of a
    // sorted input stream at the same resolution, so push cannot fail.
    #[allow(clippy::expect_used)]
    pub fn apply(&self, stream: &EventStream) -> (EventStream, usize) {
        let mut out = EventStream::new(stream.resolution());
        let mut tokens = self.burst;
        let mut last_t = stream.start().map(|t| t.as_micros()).unwrap_or(0);
        let mut dropped = 0usize;
        for e in stream.iter() {
            let now = e.t.as_micros();
            tokens = (tokens + (now - last_t) as f64 * 1e-6 * self.max_rate_eps).min(self.burst);
            last_t = now;
            if tokens >= 1.0 {
                tokens -= 1.0;
                out.push(*e).expect("controller preserves order and bounds");
            } else {
                dropped += 1;
            }
        }
        (out, dropped)
    }
}

/// Electronically foveated decimation.
///
/// Events inside the circular fovea pass untouched; outside, only one in
/// `periphery_keep_ratio` events per pixel is kept (deterministic counter
/// decimation, as a pixel-local divider circuit would implement).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoveationMask {
    center: (u16, u16),
    radius: f64,
    periphery_keep_ratio: u32,
}

impl FoveationMask {
    /// Creates a fovea of `radius` pixels at `center`; peripheral pixels keep
    /// one event out of every `periphery_keep_ratio`.
    ///
    /// # Panics
    ///
    /// Panics if `periphery_keep_ratio == 0`.
    pub fn new(center: (u16, u16), radius: f64, periphery_keep_ratio: u32) -> Self {
        assert!(periphery_keep_ratio > 0, "keep ratio must be positive");
        FoveationMask {
            center,
            radius,
            periphery_keep_ratio,
        }
    }

    /// Whether a pixel lies inside the fovea.
    pub fn in_fovea(&self, x: u16, y: u16) -> bool {
        let dx = x as f64 - self.center.0 as f64;
        let dy = y as f64 - self.center.1 as f64;
        dx * dx + dy * dy <= self.radius * self.radius
    }

    /// Applies the mask.
    // Interior invariant: output events are an order-preserving subset of a
    // sorted input stream at the same resolution, so push cannot fail.
    #[allow(clippy::expect_used)]
    pub fn apply(&self, stream: &EventStream) -> EventStream {
        let (w, h) = stream.resolution();
        let mut counters: Vec<u32> = vec![0; w as usize * h as usize];
        let mut out = EventStream::new((w, h));
        for e in stream.iter() {
            let keep = if self.in_fovea(e.x, e.y) {
                true
            } else {
                let idx = e.y as usize * w as usize + e.x as usize;
                counters[idx] += 1;
                counters[idx] % self.periphery_keep_ratio == 1 || self.periphery_keep_ratio == 1
            };
            if keep {
                out.push(*e).expect("mask preserves order and bounds");
            }
        }
        out
    }
}

/// Centre-surround antagonistic filter.
///
/// An event passes only if its local neighbourhood is *not* uniformly active:
/// if the surround ring (radius 2) fired more recently on average than the
/// centre's own dead time allows, the region is deemed uniformly active
/// (e.g. flicker or global egomotion on texture) and the event is suppressed.
/// This is a first-order model of the centre-surround event camera of
/// [Delbruck et al. 2022].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CenterSurroundFilter {
    window_us: u64,
    /// Fraction of the surround ring that must be recently active for
    /// suppression to kick in.
    suppress_fraction: f64,
}

impl CenterSurroundFilter {
    /// Creates a filter: an event is suppressed when at least
    /// `suppress_fraction` of its 16-pixel surround ring fired within
    /// `window_us`.
    ///
    /// # Panics
    ///
    /// Panics if `suppress_fraction` is outside `(0, 1]`.
    pub fn new(window_us: u64, suppress_fraction: f64) -> Self {
        assert!(
            suppress_fraction > 0.0 && suppress_fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        CenterSurroundFilter {
            window_us,
            suppress_fraction,
        }
    }

    /// Applies the filter.
    // Interior invariant: output events are an order-preserving subset of a
    // sorted input stream at the same resolution, so push cannot fail.
    #[allow(clippy::expect_used)]
    pub fn apply(&self, stream: &EventStream) -> EventStream {
        let (w, h) = stream.resolution();
        let mut last_seen: Vec<Option<u64>> = vec![None; w as usize * h as usize];
        let mut out = EventStream::new((w, h));
        for e in stream.iter() {
            let t = e.t.as_micros();
            let mut ring = 0usize;
            let mut active = 0usize;
            for dy in -2i32..=2 {
                for dx in -2i32..=2 {
                    if dx.abs() != 2 && dy.abs() != 2 {
                        continue; // ring at Chebyshev radius 2 only
                    }
                    let nx = e.x as i32 + dx;
                    let ny = e.y as i32 + dy;
                    if nx < 0 || ny < 0 || nx >= w as i32 || ny >= h as i32 {
                        continue;
                    }
                    ring += 1;
                    let idx = ny as usize * w as usize + nx as usize;
                    if let Some(prev) = last_seen[idx] {
                        if t.saturating_sub(prev) <= self.window_us {
                            active += 1;
                        }
                    }
                }
            }
            last_seen[e.y as usize * w as usize + e.x as usize] = Some(t);
            let uniform = ring > 0 && active as f64 / ring as f64 >= self.suppress_fraction;
            if !uniform {
                out.push(*e).expect("filter preserves order and bounds");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Polarity;

    fn burst_at(pixels: &[(u16, u16)], t0: u64, res: (u16, u16)) -> EventStream {
        EventStream::from_events(
            res,
            pixels
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| Event::new(t0 + i as u64, x, y, Polarity::On))
                .collect(),
        )
        .expect("valid")
    }

    #[test]
    fn downsampler_remaps_addresses() {
        let s = burst_at(&[(0, 0), (7, 7)], 0, (8, 8));
        let out = SpatialDownsampler::new(4, 0).apply(&s);
        assert_eq!(out.resolution(), (2, 2));
        assert_eq!(out.as_slice()[0].x, 0);
        assert_eq!(out.as_slice()[1].x, 1);
        assert_eq!(out.as_slice()[1].y, 1);
    }

    #[test]
    fn downsampler_dead_time_merges_blocks() {
        let s = burst_at(&[(0, 0), (1, 0), (0, 1), (1, 1)], 0, (8, 8));
        let out = SpatialDownsampler::new(2, 1_000).apply(&s);
        assert_eq!(out.len(), 1, "four events in one block within dead time");
    }

    #[test]
    fn downsampler_ceil_resolution() {
        let d = SpatialDownsampler::new(4, 0);
        assert_eq!(d.output_resolution((10, 9)), (3, 3));
    }

    #[test]
    fn rate_controller_bounds_sustained_rate() {
        // 1000 events over 1ms = 1Meps offered; cap at 100keps, burst 10.
        let s = EventStream::from_events(
            (8, 8),
            (0..1000).map(|i| Event::new(i, 0, 0, Polarity::On)).collect(),
        )
        .expect("ok");
        let (kept, dropped) = EventRateController::new(100_000.0, 10).apply(&s);
        assert_eq!(kept.len() + dropped, 1000);
        // ~1ms at 100keps sustains ~100 events plus the burst of 10.
        assert!((100..=115).contains(&kept.len()), "kept {}", kept.len());
    }

    #[test]
    fn rate_controller_passes_slow_streams() {
        let s = EventStream::from_events(
            (8, 8),
            (0..10).map(|i| Event::new(i * 100_000, 0, 0, Polarity::On)).collect(),
        )
        .expect("ok");
        let (kept, dropped) = EventRateController::new(1_000.0, 4).apply(&s);
        assert_eq!(dropped, 0);
        assert_eq!(kept.len(), 10);
    }

    #[test]
    fn foveation_keeps_center_decimate_periphery() {
        let center_events: Vec<Event> =
            (0..10).map(|i| Event::new(i, 16, 16, Polarity::On)).collect();
        let periph_events: Vec<Event> =
            (10..20).map(|i| Event::new(i, 30, 30, Polarity::On)).collect();
        let mut all = center_events;
        all.extend(periph_events);
        let s = EventStream::from_events((32, 32), all).expect("ok");
        let out = FoveationMask::new((16, 16), 5.0, 5).apply(&s);
        let in_fovea = out.iter().filter(|e| e.x == 16).count();
        let periph = out.iter().filter(|e| e.x == 30).count();
        assert_eq!(in_fovea, 10);
        assert_eq!(periph, 2, "1 in 5 kept");
    }

    #[test]
    fn center_surround_suppresses_uniform_activity() {
        // Light up a whole region repeatedly: second pass should be
        // suppressed because the surround ring is uniformly active.
        let mut events = Vec::new();
        let mut t = 0;
        for pass in 0..2 {
            for y in 4..12u16 {
                for x in 4..12u16 {
                    events.push(Event::new(t + pass * 10, x, y, Polarity::On));
                    t += 1;
                }
            }
        }
        let s = EventStream::from_unsorted((16, 16), events).expect("ok");
        let out = CenterSurroundFilter::new(10_000, 0.5).apply(&s);
        assert!(
            out.len() < s.len() / 2,
            "uniform region should be suppressed: {} of {}",
            out.len(),
            s.len()
        );
    }

    #[test]
    fn center_surround_keeps_isolated_edges() {
        // A single moving point: surround never uniformly active.
        let s = burst_at(&[(2, 2), (3, 2), (4, 2)], 0, (16, 16));
        let out = CenterSurroundFilter::new(1_000, 0.5).apply(&s);
        assert_eq!(out.len(), 3);
    }
}
