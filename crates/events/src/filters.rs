//! Event-stream filters.
//!
//! Event cameras and their host drivers commonly apply two filters before any
//! neural processing: a per-pixel *refractory* filter (suppressing bursts
//! from a single pixel) and a *background-activity* filter (suppressing
//! isolated noise events with no spatiotemporal support). Both are provided
//! here as pure stream-to-stream transforms, along with a polarity filter.

use crate::stream::EventStream;

/// Per-pixel refractory filter.
///
/// Drops any event whose pixel fired less than `refractory_us` ago,
/// regardless of polarity — mirroring the analog refractory bias of DVS
/// pixels.
///
/// # Examples
///
/// ```
/// use evlab_events::filters::RefractoryFilter;
/// use evlab_events::{Event, EventStream, Polarity};
///
/// let s = EventStream::from_events(
///     (4, 4),
///     vec![
///         Event::new(0, 1, 1, Polarity::On),
///         Event::new(10, 1, 1, Polarity::On),  // too soon, dropped
///         Event::new(200, 1, 1, Polarity::On), // kept
///     ],
/// )?;
/// let out = RefractoryFilter::new(100).apply(&s);
/// assert_eq!(out.len(), 2);
/// # Ok::<(), evlab_events::EventOrderError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefractoryFilter {
    refractory_us: u64,
}

impl RefractoryFilter {
    /// Creates a filter with the given dead time in microseconds.
    pub fn new(refractory_us: u64) -> Self {
        RefractoryFilter { refractory_us }
    }

    /// Applies the filter, returning the surviving events.
    // Interior invariant: output events are an order-preserving subset of a
    // sorted input stream at the same resolution, so push cannot fail.
    #[allow(clippy::expect_used)]
    pub fn apply(&self, stream: &EventStream) -> EventStream {
        let (w, h) = stream.resolution();
        let mut last_fire: Vec<Option<u64>> = vec![None; w as usize * h as usize];
        let mut out = EventStream::new((w, h));
        for e in stream.iter() {
            let idx = e.y as usize * w as usize + e.x as usize;
            let keep = match last_fire[idx] {
                Some(prev) => e.t.as_micros().saturating_sub(prev) >= self.refractory_us,
                None => true,
            };
            if keep {
                last_fire[idx] = Some(e.t.as_micros());
                out.push(*e).expect("filter preserves order and bounds");
            }
        }
        out
    }
}

/// Background-activity (noise) filter.
///
/// Keeps an event only if one of its 8-connected neighbours fired within the
/// last `support_us` microseconds. Isolated shot-noise events have no such
/// support and are removed; events on moving edges do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundActivityFilter {
    support_us: u64,
}

impl BackgroundActivityFilter {
    /// Creates a filter requiring neighbour support within `support_us`.
    pub fn new(support_us: u64) -> Self {
        BackgroundActivityFilter { support_us }
    }

    /// Applies the filter, returning the surviving events.
    ///
    /// Every incoming event updates its pixel's "last seen" time whether or
    /// not it survives, matching hardware implementations that always write
    /// the timestamp memory.
    // Interior invariant: output events are an order-preserving subset of a
    // sorted input stream at the same resolution, so push cannot fail.
    #[allow(clippy::expect_used)]
    pub fn apply(&self, stream: &EventStream) -> EventStream {
        let (w, h) = stream.resolution();
        let mut last_seen: Vec<Option<u64>> = vec![None; w as usize * h as usize];
        let mut out = EventStream::new((w, h));
        for e in stream.iter() {
            let t = e.t.as_micros();
            let mut supported = false;
            'scan: for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = e.x as i32 + dx;
                    let ny = e.y as i32 + dy;
                    if nx < 0 || ny < 0 || nx >= w as i32 || ny >= h as i32 {
                        continue;
                    }
                    let idx = ny as usize * w as usize + nx as usize;
                    if let Some(prev) = last_seen[idx] {
                        if t.saturating_sub(prev) <= self.support_us {
                            supported = true;
                            break 'scan;
                        }
                    }
                }
            }
            last_seen[e.y as usize * w as usize + e.x as usize] = Some(t);
            if supported {
                out.push(*e).expect("filter preserves order and bounds");
            }
        }
        out
    }
}

/// Hot-pixel filter.
///
/// Defective "hot" pixels fire continuously regardless of the scene and can
/// dominate a recording. This filter makes two passes: it measures each
/// pixel's event rate over the stream, then removes all events from pixels
/// whose rate exceeds `max_rate_hz`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotPixelFilter {
    max_rate_hz: f64,
}

impl HotPixelFilter {
    /// Creates a filter removing pixels that fire above `max_rate_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate_hz <= 0`.
    pub fn new(max_rate_hz: f64) -> Self {
        assert!(max_rate_hz > 0.0, "rate must be positive");
        HotPixelFilter { max_rate_hz }
    }

    /// Identifies the hot pixels of a stream (row-major mask).
    pub fn hot_mask(&self, stream: &EventStream) -> Vec<bool> {
        let counts = crate::stats::pixel_histogram(stream);
        let duration_s = (stream.duration_us().max(1)) as f64 * 1e-6;
        counts
            .iter()
            .map(|&c| c as f64 / duration_s > self.max_rate_hz)
            .collect()
    }

    /// Applies the filter, returning `(survivors, hot_pixel_count)`.
    pub fn apply(&self, stream: &EventStream) -> (EventStream, usize) {
        let mask = self.hot_mask(stream);
        let hot = mask.iter().filter(|&&m| m).count();
        let w = stream.width() as usize;
        let out = stream.filtered(|e| !mask[e.y as usize * w + e.x as usize]);
        (out, hot)
    }
}

/// Returns only the events of the given polarity.
pub fn polarity_filter(stream: &EventStream, polarity: crate::event::Polarity) -> EventStream {
    stream.filtered(|e| e.polarity == polarity)
}

/// Applies a chain of stream transforms in order.
///
/// # Examples
///
/// ```
/// use evlab_events::filters::{chain, BackgroundActivityFilter, RefractoryFilter};
/// use evlab_events::EventStream;
///
/// let s = EventStream::new((8, 8));
/// let refr = RefractoryFilter::new(100);
/// let ba = BackgroundActivityFilter::new(1_000);
/// let out = chain(&s, &[&|s| refr.apply(s), &|s| ba.apply(s)]);
/// assert!(out.is_empty());
/// ```
pub fn chain(
    stream: &EventStream,
    stages: &[&dyn Fn(&EventStream) -> EventStream],
) -> EventStream {
    let mut current = stream.clone();
    for stage in stages {
        current = stage(&current);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Polarity};

    #[test]
    fn refractory_drops_fast_repeats() {
        let s = EventStream::from_events(
            (4, 4),
            vec![
                Event::new(0, 0, 0, Polarity::On),
                Event::new(50, 0, 0, Polarity::Off),
                Event::new(100, 0, 0, Polarity::On),
                Event::new(100, 1, 1, Polarity::On), // other pixel, kept
            ],
        )
        .expect("ok");
        let out = RefractoryFilter::new(100).apply(&s);
        assert_eq!(out.len(), 3);
        assert_eq!(out.as_slice()[1].t.as_micros(), 100);
    }

    #[test]
    fn refractory_zero_is_identity() {
        let s = EventStream::from_events(
            (4, 4),
            vec![Event::new(0, 0, 0, Polarity::On), Event::new(0, 0, 0, Polarity::On)],
        )
        .expect("ok");
        assert_eq!(RefractoryFilter::new(0).apply(&s).len(), 2);
    }

    #[test]
    fn background_filter_removes_isolated_events() {
        // Two events far apart in space: neither supports the other.
        let s = EventStream::from_events(
            (16, 16),
            vec![Event::new(0, 1, 1, Polarity::On), Event::new(10, 10, 10, Polarity::On)],
        )
        .expect("ok");
        let out = BackgroundActivityFilter::new(1_000).apply(&s);
        assert!(out.is_empty());
    }

    #[test]
    fn background_filter_keeps_supported_events() {
        // An edge: adjacent pixels firing close in time.
        let s = EventStream::from_events(
            (16, 16),
            vec![
                Event::new(0, 5, 5, Polarity::On),
                Event::new(5, 6, 5, Polarity::On),
                Event::new(10, 7, 5, Polarity::On),
            ],
        )
        .expect("ok");
        let out = BackgroundActivityFilter::new(100).apply(&s);
        // The first event has no prior support; the following two do.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn background_filter_respects_time_window() {
        let s = EventStream::from_events(
            (16, 16),
            vec![Event::new(0, 5, 5, Polarity::On), Event::new(10_000, 6, 5, Polarity::On)],
        )
        .expect("ok");
        let out = BackgroundActivityFilter::new(100).apply(&s);
        assert!(out.is_empty(), "support expired");
    }

    #[test]
    fn hot_pixel_filter_removes_stuck_pixels() {
        // One pixel fires 100 times over 10ms (10 kHz); the scene pixel
        // fires 5 times (500 Hz).
        let mut events = Vec::new();
        for i in 0..100u64 {
            events.push(Event::new(i * 100, 2, 2, Polarity::On));
        }
        for i in 0..5u64 {
            events.push(Event::new(i * 2_000, 7, 7, Polarity::Off));
        }
        let s = EventStream::from_unsorted((8, 8), events).expect("ok");
        let (out, hot) = HotPixelFilter::new(5_000.0).apply(&s);
        assert_eq!(hot, 1);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|e| (e.x, e.y) == (7, 7)));
    }

    #[test]
    fn hot_pixel_filter_passes_normal_streams() {
        let s = EventStream::from_events(
            (8, 8),
            (0..20u64)
                .map(|i| Event::new(i * 1_000, (i % 8) as u16, 1, Polarity::On))
                .collect(),
        )
        .expect("ok");
        let (out, hot) = HotPixelFilter::new(10_000.0).apply(&s);
        assert_eq!(hot, 0);
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn polarity_filter_selects() {
        let s = EventStream::from_events(
            (4, 4),
            vec![Event::new(0, 0, 0, Polarity::On), Event::new(1, 0, 0, Polarity::Off)],
        )
        .expect("ok");
        assert_eq!(polarity_filter(&s, Polarity::On).len(), 1);
        assert_eq!(polarity_filter(&s, Polarity::Off).len(), 1);
    }

    #[test]
    fn chain_applies_in_order() {
        let s = EventStream::from_events(
            (16, 16),
            vec![
                Event::new(0, 5, 5, Polarity::On),
                Event::new(5, 6, 5, Polarity::On),
                Event::new(6, 6, 5, Polarity::On), // refractory victim
            ],
        )
        .expect("ok");
        let refr = RefractoryFilter::new(100);
        let ba = BackgroundActivityFilter::new(100);
        let out = chain(&s, &[&|s| refr.apply(s), &|s| ba.apply(s)]);
        // Refractory removes the third; BA removes the unsupported first.
        assert_eq!(out.len(), 1);
        assert_eq!(out.as_slice()[0].t.as_micros(), 5);
    }
}
