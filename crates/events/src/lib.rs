//! Event-camera data structures and stream processing.
//!
//! This crate is the data substrate shared by every paradigm in the
//! workspace. It provides:
//!
//! * [`Event`], [`Polarity`], [`Timestamp`] — the atomic unit of event-camera
//!   output: an (x, y) pixel address, a microsecond timestamp and an ON/OFF
//!   polarity.
//! * [`EventStream`] — a time-sorted sequence of events with windowing,
//!   slicing and merging operations.
//! * [`aer`] — the Address-Event Representation codec and a shared-bus model
//!   with finite bandwidth and backpressure, mirroring how events leave the
//!   sensor die.
//! * [`filters`] — refractory and background-activity (noise) filters that
//!   event cameras and their drivers commonly apply.
//! * [`downsample`] — the in-sensor event-rate mitigation strategies the
//!   paper's §II reviews: spatial downsampling, an event-rate controller,
//!   foveation, and a centre-surround filter.
//! * [`reorder`] — ingestion-side timestamp repair: a bounded-skew reorder
//!   buffer and a 32-bit rollover unwrapper, so transports with bounded
//!   disorder still feed consumers monotone time.
//! * [`stats`] — event-rate and sparsity statistics used by the Table I
//!   "Data sparsity" experiment.
//!
//! # Examples
//!
//! ```
//! use evlab_events::{Event, EventStream, Polarity};
//!
//! let stream = EventStream::from_events(
//!     (64, 64),
//!     vec![
//!         Event::new(10, 3, 4, Polarity::On),
//!         Event::new(20, 3, 5, Polarity::Off),
//!     ],
//! )?;
//! assert_eq!(stream.len(), 2);
//! assert_eq!(stream.duration_us(), 10);
//! # Ok::<(), evlab_events::EventOrderError>(())
//! ```

pub mod aer;
pub mod downsample;
pub mod event;
pub mod filters;
pub mod io;
pub mod reorder;
pub mod stats;
pub mod stream;

pub use event::{Event, Polarity, Timestamp};
pub use stream::{EventOrderError, EventStream};
