//! The atomic event type produced by an event camera.

use std::fmt;

/// Microsecond-resolution timestamp.
///
/// Event cameras timestamp changes with microsecond granularity; all of
/// `evlab` uses µs as the canonical time unit. The newtype prevents mixing
/// timestamps with other integer quantities (pixel indices, counters).
///
/// # Examples
///
/// ```
/// use evlab_events::Timestamp;
///
/// let t = Timestamp::from_micros(1_500);
/// assert_eq!(t.as_micros(), 1_500);
/// assert!((t.as_secs_f64() - 0.0015).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// Creates a timestamp from seconds, rounding to the nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        Timestamp((secs * 1e6).round() as u64)
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Saturating difference `self - earlier` in microseconds.
    pub fn saturating_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Timestamp advanced by `us` microseconds (saturating).
    pub fn offset(self, us: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(us))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(us: u64) -> Self {
        Timestamp(us)
    }
}

/// Contrast-change polarity: luminance increase ([`Polarity::On`]) or
/// decrease ([`Polarity::Off`]).
///
/// # Examples
///
/// ```
/// use evlab_events::Polarity;
///
/// assert_eq!(Polarity::On.as_sign(), 1.0);
/// assert_eq!(Polarity::Off.as_sign(), -1.0);
/// assert_eq!(Polarity::On.flip(), Polarity::Off);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Luminance increased past the ON contrast threshold.
    On,
    /// Luminance decreased past the OFF contrast threshold.
    Off,
}

impl Polarity {
    /// `+1.0` for ON, `-1.0` for OFF — the sign used when accumulating
    /// polarity-signed frames.
    pub fn as_sign(self) -> f32 {
        match self {
            Polarity::On => 1.0,
            Polarity::Off => -1.0,
        }
    }

    /// Channel index used by two-channel frame encoders (ON → 0, OFF → 1).
    pub fn channel(self) -> usize {
        match self {
            Polarity::On => 0,
            Polarity::Off => 1,
        }
    }

    /// The opposite polarity.
    pub fn flip(self) -> Polarity {
        match self {
            Polarity::On => Polarity::Off,
            Polarity::Off => Polarity::On,
        }
    }

    /// Single-bit encoding used by the AER codec (ON → 1, OFF → 0).
    pub fn bit(self) -> u64 {
        match self {
            Polarity::On => 1,
            Polarity::Off => 0,
        }
    }

    /// Decodes the AER polarity bit.
    pub fn from_bit(bit: u64) -> Polarity {
        if bit & 1 == 1 {
            Polarity::On
        } else {
            Polarity::Off
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::On => write!(f, "+"),
            Polarity::Off => write!(f, "-"),
        }
    }
}

/// A single event: pixel address, timestamp and polarity.
///
/// This is the unit of data every paradigm in the paper consumes —
/// "each comprising an XY pixel address, a timestamp and a polarity".
///
/// # Examples
///
/// ```
/// use evlab_events::{Event, Polarity};
///
/// let e = Event::new(1_000, 12, 34, Polarity::On);
/// assert_eq!(e.x, 12);
/// assert_eq!(e.t.as_micros(), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Timestamp of the contrast change.
    pub t: Timestamp,
    /// Pixel column.
    pub x: u16,
    /// Pixel row.
    pub y: u16,
    /// Contrast-change direction.
    pub polarity: Polarity,
}

impl Event {
    /// Creates an event at `t` microseconds, pixel `(x, y)`.
    pub fn new(t_us: u64, x: u16, y: u16, polarity: Polarity) -> Self {
        Event {
            t: Timestamp::from_micros(t_us),
            x,
            y,
            polarity,
        }
    }

    /// Squared spatiotemporal distance to another event, with time scaled by
    /// `beta` pixels-per-microsecond. This is the metric event-graph
    /// construction uses to connect events into a 3-D point cloud.
    pub fn spacetime_dist_sq(&self, other: &Event, beta: f64) -> f64 {
        let dx = self.x as f64 - other.x as f64;
        let dy = self.y as f64 - other.y as f64;
        let dt = (self.t.as_micros() as f64 - other.t.as_micros() as f64) * beta;
        dx * dx + dy * dy + dt * dt
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.t, self.x, self.y, self.polarity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_conversions() {
        let t = Timestamp::from_secs_f64(0.25);
        assert_eq!(t.as_micros(), 250_000);
        assert_eq!(t.as_secs_f64(), 0.25);
        assert_eq!(Timestamp::from_micros(5).offset(3).as_micros(), 8);
        assert_eq!(
            Timestamp::from_micros(5).saturating_since(Timestamp::from_micros(9)),
            0
        );
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_seconds_panic() {
        Timestamp::from_secs_f64(-1.0);
    }

    #[test]
    fn polarity_round_trip_bit() {
        for p in [Polarity::On, Polarity::Off] {
            assert_eq!(Polarity::from_bit(p.bit()), p);
        }
    }

    #[test]
    fn polarity_channels_are_distinct() {
        assert_ne!(Polarity::On.channel(), Polarity::Off.channel());
    }

    #[test]
    fn spacetime_distance() {
        let a = Event::new(0, 0, 0, Polarity::On);
        let b = Event::new(100, 3, 4, Polarity::Off);
        // beta = 0: purely spatial 3-4-5 triangle.
        assert_eq!(a.spacetime_dist_sq(&b, 0.0), 25.0);
        // beta = 0.01 px/us: dt contributes (100*0.01)^2 = 1.
        assert!((a.spacetime_dist_sq(&b, 0.01) - 26.0).abs() < 1e-9);
        // Symmetry.
        assert_eq!(
            a.spacetime_dist_sq(&b, 0.01),
            b.spacetime_dist_sq(&a, 0.01)
        );
    }

    #[test]
    fn event_display_is_nonempty() {
        let e = Event::new(7, 1, 2, Polarity::Off);
        assert!(!format!("{e}").is_empty());
        assert!(!format!("{e:?}").is_empty());
    }

    #[test]
    fn ordering_is_by_time_first() {
        let early = Event::new(10, 9, 9, Polarity::On);
        let late = Event::new(20, 0, 0, Polarity::Off);
        assert!(early.t < late.t);
        let mut v = vec![late, early];
        v.sort_by_key(|e| e.t);
        assert_eq!(v, vec![early, late]);
    }
}
