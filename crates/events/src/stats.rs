//! Event-stream statistics.
//!
//! These measurements back the "Data – Sparsity" row of the paper's Table I:
//! they quantify how much of the sensor array is actually active per time
//! window, and how the event rate evolves over a recording.

use crate::stream::EventStream;
use evlab_util::stats::Running;

/// Sparsity measurements of a stream over fixed windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityReport {
    /// Fraction of pixels with at least one event, per window.
    pub active_pixel_fraction: Running,
    /// Events per window.
    pub events_per_window: Running,
    /// Events per active pixel per window (burstiness).
    pub events_per_active_pixel: Running,
    /// Window length used, in microseconds.
    pub window_us: u64,
}

impl SparsityReport {
    /// Compression factor of the raw event representation relative to a
    /// dense frame of the same window: dense pixels / events.
    ///
    /// Returns infinity for silent streams.
    pub fn event_vs_frame_compression(&self, pixel_count: usize) -> f64 {
        let mean_events = self.events_per_window.mean();
        if mean_events == 0.0 {
            f64::INFINITY
        } else {
            pixel_count as f64 / mean_events
        }
    }
}

/// Computes sparsity statistics over consecutive `window_us` windows.
///
/// # Panics
///
/// Panics if `window_us == 0`.
///
/// # Examples
///
/// ```
/// use evlab_events::stats::sparsity;
/// use evlab_events::{Event, EventStream, Polarity};
///
/// let s = EventStream::from_events(
///     (10, 10),
///     vec![Event::new(0, 1, 1, Polarity::On), Event::new(5, 2, 2, Polarity::On)],
/// )?;
/// let report = sparsity(&s, 1_000);
/// assert!((report.active_pixel_fraction.mean() - 0.02).abs() < 1e-9);
/// # Ok::<(), evlab_events::EventOrderError>(())
/// ```
pub fn sparsity(stream: &EventStream, window_us: u64) -> SparsityReport {
    let pixel_count = stream.pixel_count();
    let mut active_pixel_fraction = Running::new();
    let mut events_per_window = Running::new();
    let mut events_per_active_pixel = Running::new();
    for window in stream.windows(window_us) {
        let mut seen = vec![false; pixel_count];
        let mut active = 0usize;
        for e in window {
            let idx = e.y as usize * stream.width() as usize + e.x as usize;
            if !seen[idx] {
                seen[idx] = true;
                active += 1;
            }
        }
        active_pixel_fraction.push(active as f64 / pixel_count as f64);
        events_per_window.push(window.len() as f64);
        if active > 0 {
            events_per_active_pixel.push(window.len() as f64 / active as f64);
        }
    }
    SparsityReport {
        active_pixel_fraction,
        events_per_window,
        events_per_active_pixel,
        window_us,
    }
}

/// Event rate over time: one sample (events/s) per `window_us` window.
pub fn rate_profile(stream: &EventStream, window_us: u64) -> Vec<f64> {
    stream
        .windows(window_us)
        .iter()
        .map(|w| w.len() as f64 / (window_us as f64 * 1e-6))
        .collect()
}

/// Per-pixel event-count map, row-major `height × width`.
pub fn pixel_histogram(stream: &EventStream) -> Vec<u32> {
    let mut counts = vec![0u32; stream.pixel_count()];
    for e in stream.iter() {
        counts[e.y as usize * stream.width() as usize + e.x as usize] += 1;
    }
    counts
}

/// Peak instantaneous rate: the maximum events/s over sliding windows of
/// `window_us`. Returns 0 for empty streams.
pub fn peak_rate_hz(stream: &EventStream, window_us: u64) -> f64 {
    rate_profile(stream, window_us)
        .into_iter()
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Polarity};

    fn uniform_stream(n: u64, res: (u16, u16)) -> EventStream {
        EventStream::from_events(
            res,
            (0..n)
                .map(|i| {
                    Event::new(
                        i * 10,
                        (i % res.0 as u64) as u16,
                        ((i / res.0 as u64) % res.1 as u64) as u16,
                        Polarity::On,
                    )
                })
                .collect(),
        )
        .expect("valid")
    }

    #[test]
    fn sparsity_counts_distinct_pixels() {
        let s = EventStream::from_events(
            (10, 10),
            vec![
                Event::new(0, 1, 1, Polarity::On),
                Event::new(1, 1, 1, Polarity::Off), // same pixel
                Event::new(2, 2, 2, Polarity::On),
            ],
        )
        .expect("ok");
        let r = sparsity(&s, 1_000);
        assert_eq!(r.events_per_window.mean(), 3.0);
        assert!((r.active_pixel_fraction.mean() - 0.02).abs() < 1e-12);
        assert!((r.events_per_active_pixel.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn compression_factor() {
        let s = uniform_stream(10, (32, 32));
        let r = sparsity(&s, 1_000);
        let c = r.event_vs_frame_compression(s.pixel_count());
        assert!((c - 1024.0 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn compression_infinite_for_silence() {
        let r = sparsity(&EventStream::new((8, 8)), 100);
        assert_eq!(r.event_vs_frame_compression(64), f64::INFINITY);
    }

    #[test]
    fn rate_profile_flat_for_uniform_stream() {
        let s = uniform_stream(100, (16, 16));
        let profile = rate_profile(&s, 100);
        assert!(!profile.is_empty());
        // 1 event per 10us = 100k events/s in every full window.
        for &r in &profile[..profile.len() - 1] {
            assert!((r - 100_000.0).abs() < 1e-6, "rate {r}");
        }
        assert!((peak_rate_hz(&s, 100) - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn pixel_histogram_totals() {
        let s = uniform_stream(50, (8, 8));
        let h = pixel_histogram(&s);
        assert_eq!(h.iter().sum::<u32>(), 50);
        assert_eq!(h.len(), 64);
    }
}
