//! The dense-frame CNN paradigm (paper §III-B).
//!
//! CNNs cannot consume event streams directly: a pre-processing step
//! aggregates events into dense frames first. This crate implements that
//! whole pipeline:
//!
//! * [`encode`] — the frame builders of Fig. 2 (centre): per-pixel event
//!   counts, two-channel polarity histograms, linear and exponential time
//!   surfaces, and multi-bin voxel grids. All encoders report their
//!   preparation cost into an [`evlab_tensor::OpCount`] (Table I row
//!   "Data – Preparation").
//! * [`model`] — LeNet-style CNN classifiers built on `evlab-tensor`.
//! * [`prune`] — magnitude pruning and uniform weight quantization, the two
//!   techniques §III-B credits for making CNNs themselves sparse.
//! * [`submanifold`] — event-driven submanifold sparse convolution
//!   ([Messikommer et al. 2020]): per-event asynchronous updates of only the
//!   affected active sites.
//! * [`recurrent`] — a GRU head giving the CNN temporal memory, the §V
//!   rebuttal ([Perot et al. 2020]) to "only SNNs have memory".
//!
//! # Examples
//!
//! ```
//! use evlab_cnn::encode::{FrameEncoder, TwoChannel};
//! use evlab_events::{Event, EventStream, Polarity};
//! use evlab_tensor::OpCount;
//!
//! let stream = EventStream::from_events(
//!     (8, 8),
//!     vec![Event::new(0, 1, 2, Polarity::On)],
//! )?;
//! let mut ops = OpCount::new();
//! let frame = TwoChannel::new().encode(stream.as_slice(), (8, 8), &mut ops);
//! assert_eq!(frame.shape(), &[2, 8, 8]);
//! assert_eq!(frame.at(&[0, 2, 1]), 1.0);
//! # Ok::<(), evlab_events::EventOrderError>(())
//! ```

pub mod encode;
pub mod model;
pub mod prune;
pub mod recurrent;
pub mod submanifold;

pub use encode::FrameEncoder;
