//! Weight pruning and quantization (paper §III-B).
//!
//! §III-B credits pruning ([Molchanov et al. 2016]) and weight quantization
//! ([Zhou et al. 2017]) for making the CNN *itself* sparse — the premise of
//! weight-skipping accelerators like Cambricon-X. Both passes operate on any
//! [`Sequential`] network.

use evlab_tensor::Sequential;
use evlab_util::stats::quantile;

/// Report of a pruning pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneReport {
    /// Weights set to zero by this pass.
    pub pruned: usize,
    /// Total weights considered (rank ≥ 2 parameters only).
    pub total: usize,
    /// Resulting weight sparsity (zero fraction) over considered weights.
    pub weight_sparsity: f64,
}

/// Magnitude pruning: zeroes the smallest-magnitude fraction of every
/// weight matrix (biases untouched).
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1)`.
///
/// # Examples
///
/// ```
/// use evlab_cnn::prune::prune_by_magnitude;
/// use evlab_cnn::model::{build_cnn, CnnConfig};
/// use evlab_util::Rng64;
///
/// let mut rng = Rng64::seed_from_u64(0);
/// let mut net = build_cnn(&CnnConfig::small(2, 32, 4), &mut rng);
/// let report = prune_by_magnitude(&mut net, 0.5);
/// assert!(report.weight_sparsity >= 0.5);
/// ```
pub fn prune_by_magnitude(net: &mut Sequential, fraction: f64) -> PruneReport {
    assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
    let mut pruned = 0usize;
    let mut total = 0usize;
    let mut zeros = 0usize;
    for param in net.params_mut() {
        if param.value.shape().len() < 2 {
            continue; // skip biases
        }
        let magnitudes: Vec<f64> = param
            .value
            .as_slice()
            .iter()
            .map(|v| v.abs() as f64)
            .collect();
        let threshold = quantile(&magnitudes, fraction).unwrap_or(0.0);
        for v in param.value.as_mut_slice() {
            total += 1;
            if (v.abs() as f64) <= threshold && *v != 0.0 {
                *v = 0.0;
                pruned += 1;
            }
            if *v == 0.0 {
                zeros += 1;
            }
        }
    }
    PruneReport {
        pruned,
        total,
        weight_sparsity: if total == 0 {
            0.0
        } else {
            zeros as f64 / total as f64
        },
    }
}

/// Report of a quantization pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizeReport {
    /// Bits per weight after quantization.
    pub bits: u32,
    /// Mean absolute quantization error.
    pub mean_abs_error: f64,
    /// Model size in bytes at the quantized precision (weights only).
    pub quantized_bytes: usize,
    /// Model size in bytes at f32 precision (weights only).
    pub fp32_bytes: usize,
}

/// Uniform symmetric quantization of all weight matrices to `bits` bits.
///
/// Values are snapped to the grid `scale * k` for integer
/// `k ∈ [-(2^(bits-1)-1), 2^(bits-1)-1]`, with per-tensor scale set by the
/// max magnitude — the straight-through-estimator deployment format of
/// §III-A/B.
///
/// # Panics
///
/// Panics if `bits` is not in `2..=16`.
pub fn quantize_weights(net: &mut Sequential, bits: u32) -> QuantizeReport {
    assert!((2..=16).contains(&bits), "bits must be in 2..=16");
    let levels = (1i64 << (bits - 1)) - 1;
    let mut err_sum = 0.0f64;
    let mut count = 0usize;
    for param in net.params_mut() {
        if param.value.shape().len() < 2 {
            continue;
        }
        let max_abs = param
            .value
            .as_slice()
            .iter()
            .fold(0.0f32, |m, v| m.max(v.abs()));
        if max_abs == 0.0 {
            count += param.value.len();
            continue;
        }
        let scale = max_abs / levels as f32;
        for v in param.value.as_mut_slice() {
            let q = (*v / scale).round().clamp(-(levels as f32), levels as f32);
            let new = q * scale;
            err_sum += (new - *v).abs() as f64;
            *v = new;
            count += 1;
        }
    }
    QuantizeReport {
        bits,
        mean_abs_error: if count == 0 { 0.0 } else { err_sum / count as f64 },
        quantized_bytes: count * bits as usize / 8,
        fp32_bytes: count * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{build_cnn, build_mlp, CnnConfig};
    use evlab_tensor::{OpCount, Tensor};
    use evlab_util::Rng64;

    #[test]
    fn pruning_reaches_target_sparsity() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut net = build_mlp(64, 32, 4, &mut rng);
        let r = prune_by_magnitude(&mut net, 0.7);
        assert!(r.weight_sparsity >= 0.69, "sparsity {}", r.weight_sparsity);
        assert!(r.pruned > 0);
        assert_eq!(r.total, 64 * 32 + 32 * 4);
    }

    #[test]
    fn pruning_zero_fraction_is_noop() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut net = build_mlp(8, 4, 2, &mut rng);
        let r = prune_by_magnitude(&mut net, 0.0);
        // Quantile 0 = min magnitude; only exact ties with the min prune.
        assert!(r.weight_sparsity < 0.1);
    }

    #[test]
    fn pruned_network_still_runs_and_skips_ops() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut net = build_cnn(&CnnConfig::small(1, 16, 4), &mut rng);
        prune_by_magnitude(&mut net, 0.8);
        let mut ops = OpCount::new();
        let x = Tensor::filled(&[1, 16, 16], 1.0);
        let y = net.forward(&x, &mut ops);
        assert_eq!(y.shape(), &[4]);
    }

    #[test]
    fn quantization_error_shrinks_with_bits() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut net2 = build_mlp(32, 16, 4, &mut rng);
        let mut net8 = net2_clone(&mut rng);
        let r2 = quantize_weights(&mut net2, 2);
        let r8 = quantize_weights(&mut net8, 8);
        assert!(r8.mean_abs_error < r2.mean_abs_error);
        assert_eq!(r8.quantized_bytes * 4, r8.fp32_bytes);
    }

    fn net2_clone(rng: &mut Rng64) -> Sequential {
        // Fresh net with the same architecture; exact weights differ but the
        // bit-width comparison is robust to that.
        build_mlp(32, 16, 4, rng)
    }

    #[test]
    fn quantization_snaps_to_grid() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut net = build_mlp(8, 4, 2, &mut rng);
        quantize_weights(&mut net, 4);
        // 4-bit symmetric: 7 levels each side. Every weight matrix value
        // must be an integer multiple of its scale.
        for param in net.params_mut() {
            if param.value.shape().len() < 2 {
                continue;
            }
            let max_abs = param
                .value
                .as_slice()
                .iter()
                .fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = max_abs / 7.0;
            for &v in param.value.as_slice() {
                let k = v / scale;
                assert!((k - k.round()).abs() < 1e-4, "off grid: {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=16")]
    fn one_bit_quantization_rejected() {
        let mut rng = Rng64::seed_from_u64(6);
        let mut net = build_mlp(4, 2, 2, &mut rng);
        quantize_weights(&mut net, 1);
    }
}
