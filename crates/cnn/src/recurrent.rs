//! Recurrent temporal memory for frame-based pipelines (paper §V).
//!
//! The paper's rebuttal to "SNNs are required for temporal memory" is that
//! recurrent blocks can be incorporated into CNN pipelines ([Perot et al.
//! 2020]). This module implements a GRU cell with full backpropagation
//! through time and a sequence classifier that consumes a sequence of
//! encoded event frames.

use evlab_tensor::layer::Param;
use evlab_tensor::loss::cross_entropy;
use evlab_tensor::optim::Optimizer;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::Rng64;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// `W x` for `W: [rows, cols]`, recording MACs.
fn matvec(w: &Tensor, x: &[f32], ops: &mut OpCount) -> Vec<f32> {
    let rows = w.shape()[0];
    let cols = w.shape()[1];
    assert_eq!(x.len(), cols, "matvec dimension mismatch");
    let ws = w.as_slice();
    let mut out = vec![0.0f32; rows];
    for (r, slot) in out.iter_mut().enumerate() {
        let row = &ws[r * cols..(r + 1) * cols];
        *slot = row.iter().zip(x).map(|(a, b)| a * b).sum();
    }
    ops.record_mac((rows * cols) as u64, (rows * cols) as u64);
    out
}

/// `W^T g` for `W: [rows, cols]`.
fn matvec_t(w: &Tensor, g: &[f32], ops: &mut OpCount) -> Vec<f32> {
    let rows = w.shape()[0];
    let cols = w.shape()[1];
    assert_eq!(g.len(), rows, "matvec_t dimension mismatch");
    let ws = w.as_slice();
    let mut out = vec![0.0f32; cols];
    for r in 0..rows {
        let gr = g[r];
        if gr == 0.0 {
            continue;
        }
        let row = &ws[r * cols..(r + 1) * cols];
        for (o, &wv) in out.iter_mut().zip(row) {
            *o += gr * wv;
        }
    }
    ops.record_mac((rows * cols) as u64, (rows * cols) as u64);
    out
}

/// Accumulates the outer product `g xᵀ` into `grad` (shape `[rows, cols]`).
fn outer_acc(grad: &mut Tensor, g: &[f32], x: &[f32]) {
    let cols = x.len();
    let gs = grad.as_mut_slice();
    for (r, &gr) in g.iter().enumerate() {
        if gr == 0.0 {
            continue;
        }
        for (c, &xc) in x.iter().enumerate() {
            gs[r * cols + c] += gr * xc;
        }
    }
}

fn add_into(acc: &mut [f32], v: &[f32]) {
    for (a, b) in acc.iter_mut().zip(v) {
        *a += b;
    }
}

#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    c: Vec<f32>,
}

/// A gated recurrent unit with full BPTT.
///
/// # Examples
///
/// ```
/// use evlab_cnn::recurrent::GruCell;
/// use evlab_tensor::{OpCount, Tensor};
/// use evlab_util::Rng64;
///
/// let mut rng = Rng64::seed_from_u64(0);
/// let mut gru = GruCell::new(4, 8, &mut rng);
/// let frames = vec![Tensor::zeros(&[4]), Tensor::zeros(&[4])];
/// let mut ops = OpCount::new();
/// let h = gru.forward_sequence(&frames, &mut ops);
/// assert_eq!(h.shape(), &[8]);
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: Param,
    uz: Param,
    bz: Param,
    wr: Param,
    ur: Param,
    br: Param,
    wc: Param,
    uc: Param,
    bc: Param,
    input_size: usize,
    hidden_size: usize,
    caches: Vec<StepCache>,
}

impl GruCell {
    /// Creates a GRU cell with Xavier-scaled weights.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut Rng64) -> Self {
        assert!(input_size > 0 && hidden_size > 0, "zero-sized GRU");
        let w = |rng: &mut Rng64, rows: usize, cols: usize| {
            Param::new(evlab_tensor::init::xavier_uniform(
                &[rows, cols],
                cols,
                rows,
                rng,
            ))
        };
        GruCell {
            wz: w(rng, hidden_size, input_size),
            uz: w(rng, hidden_size, hidden_size),
            bz: Param::new(Tensor::zeros(&[hidden_size])),
            wr: w(rng, hidden_size, input_size),
            ur: w(rng, hidden_size, hidden_size),
            br: Param::new(Tensor::zeros(&[hidden_size])),
            wc: w(rng, hidden_size, input_size),
            uc: w(rng, hidden_size, hidden_size),
            bc: Param::new(Tensor::zeros(&[hidden_size])),
            input_size,
            hidden_size,
            caches: Vec::new(),
        }
    }

    /// Hidden state dimensionality.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.wz,
            &mut self.uz,
            &mut self.bz,
            &mut self.wr,
            &mut self.ur,
            &mut self.br,
            &mut self.wc,
            &mut self.uc,
            &mut self.bc,
        ]
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        3 * (self.hidden_size * self.input_size
            + self.hidden_size * self.hidden_size
            + self.hidden_size)
    }

    fn step(&mut self, x: &[f32], h_prev: &[f32], ops: &mut OpCount) -> Vec<f32> {
        let mut a_z = matvec(&self.wz.value, x, ops);
        add_into(&mut a_z, &matvec(&self.uz.value, h_prev, ops));
        add_into(&mut a_z, self.bz.value.as_slice());
        let z: Vec<f32> = a_z.iter().map(|&v| sigmoid(v)).collect();

        let mut a_r = matvec(&self.wr.value, x, ops);
        add_into(&mut a_r, &matvec(&self.ur.value, h_prev, ops));
        add_into(&mut a_r, self.br.value.as_slice());
        let r: Vec<f32> = a_r.iter().map(|&v| sigmoid(v)).collect();

        let rh: Vec<f32> = r.iter().zip(h_prev).map(|(a, b)| a * b).collect();
        let mut a_c = matvec(&self.wc.value, x, ops);
        add_into(&mut a_c, &matvec(&self.uc.value, &rh, ops));
        add_into(&mut a_c, self.bc.value.as_slice());
        let c: Vec<f32> = a_c.iter().map(|&v| v.tanh()).collect();

        let h: Vec<f32> = z
            .iter()
            .zip(&c)
            .zip(h_prev)
            .map(|((&z, &c), &h)| (1.0 - z) * h + z * c)
            .collect();
        ops.record_mult(4 * self.hidden_size as u64);
        self.caches.push(StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            z,
            r,
            c: c.clone(),
        });
        h
    }

    /// Runs the cell over a sequence from a zero hidden state, caching every
    /// step for BPTT, and returns the final hidden state.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or an input has the wrong length.
    pub fn forward_sequence(&mut self, inputs: &[Tensor], ops: &mut OpCount) -> Tensor {
        assert!(!inputs.is_empty(), "empty sequence");
        self.caches.clear();
        let mut h = vec![0.0f32; self.hidden_size];
        for x in inputs {
            assert_eq!(x.len(), self.input_size, "input size mismatch");
            h = self.step(x.as_slice(), &h, ops);
        }
        Tensor::from_vec(&[self.hidden_size], h).expect("hidden shape")
    }

    /// Backpropagates a gradient at the final hidden state through every
    /// cached step, accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`GruCell::forward_sequence`].
    pub fn backward_sequence(&mut self, grad_h_final: &Tensor, ops: &mut OpCount) {
        assert!(!self.caches.is_empty(), "backward without forward");
        let mut dh = grad_h_final.as_slice().to_vec();
        let caches = std::mem::take(&mut self.caches);
        for cache in caches.iter().rev() {
            let StepCache { x, h_prev, z, r, c } = cache;
            // h' = (1-z) h + z c
            let dz: Vec<f32> = dh
                .iter()
                .zip(c.iter().zip(h_prev))
                .map(|(&d, (&cv, &hv))| d * (cv - hv))
                .collect();
            let dc: Vec<f32> = dh.iter().zip(z).map(|(&d, &zv)| d * zv).collect();
            let mut dh_prev: Vec<f32> =
                dh.iter().zip(z).map(|(&d, &zv)| d * (1.0 - zv)).collect();

            let da_c: Vec<f32> = dc
                .iter()
                .zip(c)
                .map(|(&d, &cv)| d * (1.0 - cv * cv))
                .collect();
            outer_acc(&mut self.wc.grad, &da_c, x);
            let rh: Vec<f32> = r.iter().zip(h_prev).map(|(a, b)| a * b).collect();
            outer_acc(&mut self.uc.grad, &da_c, &rh);
            add_into(self.bc.grad.as_mut_slice(), &da_c);
            let drh = matvec_t(&self.uc.value, &da_c, ops);
            let dr: Vec<f32> = drh.iter().zip(h_prev).map(|(&d, &hv)| d * hv).collect();
            for (dhp, (&d, &rv)) in dh_prev.iter_mut().zip(drh.iter().zip(r)) {
                *dhp += d * rv;
            }

            let da_r: Vec<f32> = dr
                .iter()
                .zip(r)
                .map(|(&d, &rv)| d * rv * (1.0 - rv))
                .collect();
            outer_acc(&mut self.wr.grad, &da_r, x);
            outer_acc(&mut self.ur.grad, &da_r, h_prev);
            add_into(self.br.grad.as_mut_slice(), &da_r);
            add_into(&mut dh_prev, &matvec_t(&self.ur.value, &da_r, ops));

            let da_z: Vec<f32> = dz
                .iter()
                .zip(z)
                .map(|(&d, &zv)| d * zv * (1.0 - zv))
                .collect();
            outer_acc(&mut self.wz.grad, &da_z, x);
            outer_acc(&mut self.uz.grad, &da_z, h_prev);
            add_into(self.bz.grad.as_mut_slice(), &da_z);
            add_into(&mut dh_prev, &matvec_t(&self.uz.value, &da_z, ops));

            dh = dh_prev;
        }
    }
}

/// GRU-over-frames sequence classifier.
#[derive(Debug, Clone)]
pub struct RecurrentClassifier {
    cell: GruCell,
    head_w: Param,
    head_b: Param,
    num_classes: usize,
}

impl RecurrentClassifier {
    /// Creates a classifier with the given feature size, hidden size and
    /// class count.
    pub fn new(
        input_size: usize,
        hidden_size: usize,
        num_classes: usize,
        rng: &mut Rng64,
    ) -> Self {
        RecurrentClassifier {
            cell: GruCell::new(input_size, hidden_size, rng),
            head_w: Param::new(evlab_tensor::init::xavier_uniform(
                &[num_classes, hidden_size],
                hidden_size,
                num_classes,
                rng,
            )),
            head_b: Param::new(Tensor::zeros(&[num_classes])),
            num_classes,
        }
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.cell.param_count() + self.head_w.len() + self.head_b.len()
    }

    /// Class logits for a frame sequence.
    pub fn logits(&mut self, frames: &[Tensor], ops: &mut OpCount) -> Tensor {
        let h = self.cell.forward_sequence(frames, ops);
        let mut out = matvec(&self.head_w.value, h.as_slice(), ops);
        add_into(&mut out, self.head_b.value.as_slice());
        Tensor::from_vec(&[self.num_classes], out).expect("logit shape")
    }

    /// Predicted class for a frame sequence.
    pub fn predict(&mut self, frames: &[Tensor], ops: &mut OpCount) -> usize {
        self.logits(frames, ops).argmax()
    }

    /// One training sample: forward, cross-entropy backward, gradient
    /// accumulation. Returns the loss.
    pub fn accumulate(&mut self, frames: &[Tensor], label: usize, ops: &mut OpCount) -> f32 {
        let h = self.cell.forward_sequence(frames, ops);
        let mut logits = matvec(&self.head_w.value, h.as_slice(), ops);
        add_into(&mut logits, self.head_b.value.as_slice());
        let logits = Tensor::from_vec(&[self.num_classes], logits).expect("shape");
        let (loss, grad) = cross_entropy(&logits, label);
        // Head gradients.
        outer_acc(&mut self.head_w.grad, grad.as_slice(), h.as_slice());
        add_into(self.head_b.grad.as_mut_slice(), grad.as_slice());
        let dh = matvec_t(&self.head_w.value, grad.as_slice(), ops);
        let dh = Tensor::from_vec(&[self.cell.hidden_size()], dh).expect("shape");
        self.cell.backward_sequence(&dh, ops);
        loss
    }

    /// Applies an optimizer step to all parameters.
    pub fn step(&mut self, optimizer: &mut dyn Optimizer) {
        let mut params = self.cell.params_mut();
        params.push(&mut self.head_w);
        params.push(&mut self.head_b);
        optimizer.step(&mut params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_tensor::optim::Adam;

    #[test]
    fn gru_gradients_match_finite_difference() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut gru = GruCell::new(3, 4, &mut rng);
        let seq: Vec<Tensor> = (0..3)
            .map(|i| {
                Tensor::from_vec(
                    &[3],
                    vec![0.1 * i as f32, -0.2, 0.3 + 0.1 * i as f32],
                )
                .expect("ok")
            })
            .collect();
        let mut ops = OpCount::new();
        let h = gru.forward_sequence(&seq, &mut ops);
        let ones = Tensor::filled(h.shape(), 1.0);
        gru.backward_sequence(&ones, &mut ops);
        // Check a sample of weights from each matrix by finite differences
        // on the objective sum(h_final).
        let eps = 1e-3f32;
        for pi in 0..9 {
            let analytic = gru.params_mut()[pi].grad.clone();
            for wi in [0usize, 1] {
                if wi >= analytic.len() {
                    continue;
                }
                let orig = gru.params_mut()[pi].value.as_slice()[wi];
                gru.params_mut()[pi].value.as_mut_slice()[wi] = orig + eps;
                let f_plus = gru.forward_sequence(&seq, &mut ops).sum();
                gru.params_mut()[pi].value.as_mut_slice()[wi] = orig - eps;
                let f_minus = gru.forward_sequence(&seq, &mut ops).sum();
                gru.params_mut()[pi].value.as_mut_slice()[wi] = orig;
                let numeric = (f_plus - f_minus) / (2.0 * eps);
                let a = analytic.as_slice()[wi];
                assert!(
                    (numeric - a).abs() < 2e-2,
                    "param {pi} weight {wi}: numeric {numeric} vs analytic {a}"
                );
            }
        }
    }

    #[test]
    fn gru_learns_temporal_order() {
        // Two classes with identical frame *sets* but different order:
        // only a model with memory can separate them.
        let mut rng = Rng64::seed_from_u64(2);
        let a = Tensor::from_vec(&[2], vec![1.0, 0.0]).expect("ok");
        let b = Tensor::from_vec(&[2], vec![0.0, 1.0]).expect("ok");
        let class0 = vec![a.clone(), b.clone()]; // a then b
        let class1 = vec![b, a]; // b then a
        let mut clf = RecurrentClassifier::new(2, 8, 2, &mut rng);
        let mut opt = Adam::new(0.05);
        let mut ops = OpCount::new();
        for _ in 0..200 {
            clf.accumulate(&class0, 0, &mut ops);
            clf.accumulate(&class1, 1, &mut ops);
            clf.step(&mut opt);
        }
        assert_eq!(clf.predict(&class0, &mut ops), 0);
        assert_eq!(clf.predict(&class1, &mut ops), 1);
    }

    #[test]
    fn param_count_formula() {
        let mut rng = Rng64::seed_from_u64(3);
        let gru = GruCell::new(5, 7, &mut rng);
        assert_eq!(gru.param_count(), 3 * (7 * 5 + 7 * 7 + 7));
        let clf = RecurrentClassifier::new(5, 7, 3, &mut rng);
        assert_eq!(clf.param_count(), gru.param_count() + 3 * 7 + 3);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut gru = GruCell::new(2, 2, &mut rng);
        gru.forward_sequence(&[], &mut OpCount::new());
    }
}
