//! Event-driven sparse convolutions (paper §III-B, [Messikommer et al.
//! 2020]).
//!
//! Two asynchronous evaluation strategies are implemented:
//!
//! * [`EventDrivenConv`] — *delta propagation* through a single linear
//!   convolution: each incoming event adds a weighted kernel footprint to
//!   the output map. Exact, and costs `O·K²` MACs per event instead of a
//!   full-frame reconvolution.
//! * [`SubmanifoldNet`] — a stack of submanifold convolutions with ReLU:
//!   sites are *active* only where the input has received events, outputs
//!   are computed only at active sites, and each event triggers recomputation
//!   of just the affected active sites in every layer.
//!
//! Both recover the per-event, low-latency computation style the paper
//! attributes to SNNs/GNNs, at the price of growing per-layer dilation.

use evlab_events::Event;
use evlab_tensor::init::he_normal;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::Rng64;

/// A single linear convolution evaluated by per-event delta propagation.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDrivenConv {
    weight: Tensor, // [O, C, K, K]
    out_channels: usize,
    in_channels: usize,
    kernel: usize,
    width: usize,
    height: usize,
    output: Tensor, // [O, H, W]
}

impl EventDrivenConv {
    /// Creates a conv with random weights over a `(width, height)` frame.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is even (same-padding delta updates need odd
    /// kernels) or any dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        resolution: (u16, u16),
        rng: &mut Rng64,
    ) -> Self {
        assert!(kernel % 2 == 1, "kernel must be odd");
        assert!(in_channels > 0 && out_channels > 0, "zero-sized conv");
        let weight = he_normal(
            &[out_channels, in_channels, kernel, kernel],
            in_channels * kernel * kernel,
            rng,
        );
        EventDrivenConv {
            weight,
            out_channels,
            in_channels,
            kernel,
            width: resolution.0 as usize,
            height: resolution.1 as usize,
            output: Tensor::zeros(&[
                out_channels,
                resolution.1 as usize,
                resolution.0 as usize,
            ]),
        }
    }

    /// The current output map `[O, H, W]`.
    pub fn output(&self) -> &Tensor {
        &self.output
    }

    /// Resets the output map to zero.
    pub fn reset(&mut self) {
        self.output.fill_zero();
    }

    /// Applies one event: adds `sign × w[o, c, ·, ·]` around the event
    /// location (channel `c` from the event polarity). Costs `O·K²` MACs.
    pub fn update(&mut self, event: &Event, ops: &mut OpCount) {
        let c = event.polarity.channel().min(self.in_channels - 1);
        let sign = event.polarity.as_sign();
        let k = self.kernel;
        let half = (k / 2) as isize;
        let w = self.weight.as_slice();
        let out = self.output.as_mut_slice();
        let mut effective = 0u64;
        for o in 0..self.out_channels {
            for ky in 0..k {
                let oy = event.y as isize + half - ky as isize;
                if oy < 0 || oy >= self.height as isize {
                    continue;
                }
                for kx in 0..k {
                    let ox = event.x as isize + half - kx as isize;
                    if ox < 0 || ox >= self.width as isize {
                        continue;
                    }
                    let wv = w[((o * self.in_channels + c) * k + ky) * k + kx];
                    out[(o * self.height + oy as usize) * self.width + ox as usize] +=
                        sign * wv;
                    effective += 1;
                }
            }
        }
        ops.record_mac(effective, effective);
        ops.record_write(effective);
    }

    /// Dense reference: convolves an accumulated `[C, H, W]` frame from
    /// scratch. Used to validate the incremental path and to compare costs.
    pub fn dense_forward(&self, frame: &Tensor, ops: &mut OpCount) -> Tensor {
        assert_eq!(
            frame.shape(),
            &[self.in_channels, self.height, self.width],
            "frame shape mismatch"
        );
        let k = self.kernel;
        let half = (k / 2) as isize;
        let x = frame.as_slice();
        let w = self.weight.as_slice();
        let mut out = Tensor::zeros(&[self.out_channels, self.height, self.width]);
        let mut effective = 0u64;
        {
            let os = out.as_mut_slice();
            for o in 0..self.out_channels {
                for oy in 0..self.height {
                    for ox in 0..self.width {
                        let mut acc = 0.0f32;
                        for c in 0..self.in_channels {
                            for ky in 0..k {
                                let iy = oy as isize + ky as isize - half;
                                if iy < 0 || iy >= self.height as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = ox as isize + kx as isize - half;
                                    if ix < 0 || ix >= self.width as isize {
                                        continue;
                                    }
                                    let xv =
                                        x[(c * self.height + iy as usize) * self.width
                                            + ix as usize];
                                    if xv != 0.0 {
                                        effective += 1;
                                        acc += xv
                                            * w[((o * self.in_channels + c) * k + ky) * k
                                                + kx];
                                    }
                                }
                            }
                        }
                        os[(o * self.height + oy) * self.width + ox] = acc;
                    }
                }
            }
        }
        let nominal = (self.out_channels
            * self.height
            * self.width
            * self.in_channels
            * k
            * k) as u64;
        ops.record_mac(nominal, effective.min(nominal));
        ops.record_write((self.out_channels * self.height * self.width) as u64);
        out
    }
}

/// One submanifold layer's weights.
#[derive(Debug, Clone, PartialEq)]
struct SmLayer {
    weight: Tensor, // [O, C, K, K]
    bias: Tensor,   // [O]
    out_channels: usize,
    in_channels: usize,
}

/// A stack of submanifold sparse convolutions with ReLU, updated per event.
///
/// The *active set* is the set of pixels that have received at least one
/// event; all layers share it (the defining property of submanifold
/// convolutions — activity cannot dilate). Outputs at inactive sites are
/// identically zero.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmanifoldNet {
    layers: Vec<SmLayer>,
    kernel: usize,
    width: usize,
    height: usize,
    input: Tensor,            // [2, H, W] accumulated polarity counts
    activations: Vec<Tensor>, // per-layer [O, H, W]
    /// O(1) activity lookup, indexed `y * width + x`.
    active_mask: Vec<bool>,
    /// Active sites sorted lexicographically by `(x, y)` — the same
    /// iteration order the former `BTreeSet<(u16, u16)>` produced.
    active_list: Vec<(u16, u16)>,
    // Reusable per-update buffers: after warmup, `update` performs no
    // heap allocation (the `sort_unstable + dedup` dedup pass is in-place).
    frontier: Vec<(u16, u16)>,
    sites_buf: Vec<(u16, u16)>,
    site_values: Vec<f32>,
}

impl SubmanifoldNet {
    /// Creates a net with the given per-layer output channel counts, all
    /// `kernel × kernel`, over a two-channel polarity-count input.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty or the kernel is even.
    pub fn new(
        channels: &[usize],
        kernel: usize,
        resolution: (u16, u16),
        rng: &mut Rng64,
    ) -> Self {
        assert!(!channels.is_empty(), "need at least one layer");
        assert!(kernel % 2 == 1, "kernel must be odd");
        let (w, h) = (resolution.0 as usize, resolution.1 as usize);
        let mut layers = Vec::new();
        let mut in_c = 2usize;
        let mut activations = Vec::new();
        for &out_c in channels {
            layers.push(SmLayer {
                weight: he_normal(
                    &[out_c, in_c, kernel, kernel],
                    in_c * kernel * kernel,
                    rng,
                ),
                bias: Tensor::zeros(&[out_c]),
                out_channels: out_c,
                in_channels: in_c,
            });
            activations.push(Tensor::zeros(&[out_c, h, w]));
            in_c = out_c;
        }
        SubmanifoldNet {
            layers,
            kernel,
            width: w,
            height: h,
            input: Tensor::zeros(&[2, h, w]),
            activations,
            active_mask: vec![false; w * h],
            active_list: Vec::new(),
            frontier: Vec::new(),
            sites_buf: Vec::new(),
            site_values: Vec::new(),
        }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Currently active sites.
    pub fn active_sites(&self) -> usize {
        self.active_list.len()
    }

    /// Final-layer activation map.
    pub fn features(&self) -> &Tensor {
        self.activations.last().expect("at least one layer")
    }

    /// Global sum pooling of the final features — a cheap readout vector.
    pub fn global_pool(&self) -> Vec<f32> {
        let f = self.features();
        let c = f.shape()[0];
        let hw = self.height * self.width;
        (0..c)
            .map(|ci| f.as_slice()[ci * hw..(ci + 1) * hw].iter().sum())
            .collect()
    }

    /// Clears all state (buffer capacity is retained).
    pub fn reset(&mut self) {
        self.input.fill_zero();
        for a in &mut self.activations {
            a.fill_zero();
        }
        self.active_mask.fill(false);
        self.active_list.clear();
    }

    /// Computes one site's post-ReLU output into `out` (length
    /// `out_channels`); every element is overwritten. Writing into a
    /// caller-owned buffer keeps the per-event path allocation-free.
    fn compute_site_into(
        &self,
        layer_idx: usize,
        x: usize,
        y: usize,
        out: &mut [f32],
        ops: &mut OpCount,
    ) {
        let layer = &self.layers[layer_idx];
        let input: &Tensor = if layer_idx == 0 {
            &self.input
        } else {
            &self.activations[layer_idx - 1]
        };
        let k = self.kernel;
        let half = (k / 2) as isize;
        let xs = input.as_slice();
        let w = layer.weight.as_slice();
        debug_assert_eq!(out.len(), layer.out_channels);
        let mut effective = 0u64;
        for (o, slot) in out.iter_mut().enumerate() {
            let mut acc = layer.bias.as_slice()[o];
            for ky in 0..k {
                let iy = y as isize + ky as isize - half;
                if iy < 0 || iy >= self.height as isize {
                    continue;
                }
                for kx in 0..k {
                    let ix = x as isize + kx as isize - half;
                    if ix < 0 || ix >= self.width as isize {
                        continue;
                    }
                    // Submanifold rule: only read active sites.
                    if !self.active_mask[iy as usize * self.width + ix as usize] {
                        continue;
                    }
                    for c in 0..layer.in_channels {
                        let xv =
                            xs[(c * self.height + iy as usize) * self.width + ix as usize];
                        if xv != 0.0 {
                            effective += 1;
                            acc += xv
                                * w[((o * layer.in_channels + c) * k + ky) * k + kx];
                        }
                    }
                }
            }
            *slot = acc.max(0.0); // ReLU
        }
        ops.record_mac(effective, effective);
        ops.record_compare(layer.out_channels as u64);
    }

    /// Fills `out` with the active sites within one kernel radius of any
    /// seed, sorted lexicographically and deduplicated (the order the old
    /// `BTreeSet` implementation produced). In-place sort + dedup keeps
    /// this allocation-free once `out` has grown to its working size.
    fn affected_sites_into(&self, seeds: &[(u16, u16)], out: &mut Vec<(u16, u16)>) {
        let half = (self.kernel / 2) as isize;
        out.clear();
        for &(x, y) in seeds {
            for dy in -half..=half {
                for dx in -half..=half {
                    let nx = x as isize + dx;
                    let ny = y as isize + dy;
                    if nx < 0 || ny < 0 || nx >= self.width as isize || ny >= self.height as isize
                    {
                        continue;
                    }
                    if self.active_mask[ny as usize * self.width + nx as usize] {
                        out.push((nx as u16, ny as u16));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Processes one event asynchronously: updates the input counts,
    /// activates the site, and recomputes the affected active sites of every
    /// layer. Returns the number of site recomputations.
    pub fn update(&mut self, event: &Event, ops: &mut OpCount) -> usize {
        let (x, y) = (event.x as usize, event.y as usize);
        let c = event.polarity.channel();
        let idx = (c * self.height + y) * self.width + x;
        self.input.as_mut_slice()[idx] += 1.0;
        let site = (event.x, event.y);
        if !self.active_mask[y * self.width + x] {
            self.active_mask[y * self.width + x] = true;
            let pos = self
                .active_list
                .binary_search(&site)
                .expect_err("mask says site is new");
            self.active_list.insert(pos, site);
        }
        ops.record_add(1);

        // Detach the reusable buffers so `&self` methods can fill them.
        let mut frontier = std::mem::take(&mut self.frontier);
        let mut sites = std::mem::take(&mut self.sites_buf);
        let mut values = std::mem::take(&mut self.site_values);
        frontier.clear();
        frontier.push(site);
        let mut recomputed = 0usize;
        for l in 0..self.layers.len() {
            self.affected_sites_into(&frontier, &mut sites);
            values.resize(self.layers[l].out_channels, 0.0);
            for &(sx, sy) in &sites {
                self.compute_site_into(l, sx as usize, sy as usize, &mut values, ops);
                let act = &mut self.activations[l];
                let hw = self.height * self.width;
                for (o, &v) in values.iter().enumerate() {
                    act.as_mut_slice()[o * hw + sy as usize * self.width + sx as usize] = v;
                }
                recomputed += 1;
            }
            ops.record_write((sites.len() * self.layers[l].out_channels) as u64);
            std::mem::swap(&mut frontier, &mut sites);
        }
        self.frontier = frontier;
        self.sites_buf = sites;
        self.site_values = values;
        recomputed
    }

    /// Recomputes everything from the accumulated input (dense reference
    /// honouring the submanifold active-set rule). The result must equal
    /// the incrementally maintained state.
    pub fn dense_refresh(&mut self, ops: &mut OpCount) {
        let mut sites = std::mem::take(&mut self.sites_buf);
        sites.clear();
        sites.extend_from_slice(&self.active_list);
        let mut values = std::mem::take(&mut self.site_values);
        for l in 0..self.layers.len() {
            values.resize(self.layers[l].out_channels, 0.0);
            for &(sx, sy) in &sites {
                self.compute_site_into(l, sx as usize, sy as usize, &mut values, ops);
                let act = &mut self.activations[l];
                let hw = self.height * self.width;
                for (o, &v) in values.iter().enumerate() {
                    act.as_mut_slice()[o * hw + sy as usize * self.width + sx as usize] = v;
                }
            }
        }
        self.sites_buf = sites;
        self.site_values = values;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::Polarity;

    #[test]
    fn delta_update_matches_dense_reconvolution() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut conv = EventDrivenConv::new(2, 4, 3, (8, 8), &mut rng);
        let events = vec![
            Event::new(0, 2, 2, Polarity::On),
            Event::new(10, 3, 2, Polarity::Off),
            Event::new(20, 2, 2, Polarity::On),
            Event::new(30, 7, 7, Polarity::On),
            Event::new(40, 0, 0, Polarity::Off),
        ];
        let mut ops = OpCount::new();
        for e in &events {
            conv.update(e, &mut ops);
        }
        // Accumulate signed counts the same way the delta path does: the
        // delta path adds sign * w, i.e. the frame value is the signed sum.
        let mut frame2 = Tensor::zeros(&[2, 8, 8]);
        for e in &events {
            let c = e.polarity.channel();
            let idx = (c * 8 + e.y as usize) * 8 + e.x as usize;
            frame2.as_mut_slice()[idx] += e.polarity.as_sign();
        }
        let dense = conv.dense_forward(&frame2, &mut ops);
        for (a, b) in conv.output().as_slice().iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-4, "delta {a} vs dense {b}");
        }
    }

    #[test]
    fn per_event_cost_beats_full_frame() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut conv = EventDrivenConv::new(2, 8, 3, (64, 64), &mut rng);
        let mut ops_event = OpCount::new();
        conv.update(&Event::new(0, 32, 32, Polarity::On), &mut ops_event);
        let mut ops_dense = OpCount::new();
        let frame = Tensor::filled(&[2, 64, 64], 1.0);
        conv.dense_forward(&frame, &mut ops_dense);
        assert!(
            ops_dense.macs > 100 * ops_event.macs,
            "dense {} vs event {}",
            ops_dense.macs,
            ops_event.macs
        );
    }

    #[test]
    fn submanifold_keeps_inactive_sites_zero() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut net = SubmanifoldNet::new(&[4, 4], 3, (16, 16), &mut rng);
        let mut ops = OpCount::new();
        net.update(&Event::new(0, 5, 5, Polarity::On), &mut ops);
        net.update(&Event::new(10, 6, 5, Polarity::Off), &mut ops);
        assert_eq!(net.active_sites(), 2);
        let f = net.features();
        // Any site other than the two active ones must be zero, even
        // neighbours inside the kernel radius.
        let hw = 16 * 16;
        for o in 0..4 {
            for y in 0..16u16 {
                for x in 0..16u16 {
                    if (x, y) == (5, 5) || (x, y) == (6, 5) {
                        continue;
                    }
                    let v = f.as_slice()[o * hw + y as usize * 16 + x as usize];
                    assert_eq!(v, 0.0, "site ({x},{y}) chan {o} leaked: {v}");
                }
            }
        }
    }

    #[test]
    fn incremental_matches_dense_refresh() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut net = SubmanifoldNet::new(&[3, 5], 3, (12, 12), &mut rng);
        let mut ops = OpCount::new();
        let events = vec![
            Event::new(0, 3, 3, Polarity::On),
            Event::new(5, 4, 3, Polarity::On),
            Event::new(9, 3, 4, Polarity::Off),
            Event::new(12, 9, 9, Polarity::On),
            Event::new(20, 4, 4, Polarity::On),
            Event::new(25, 3, 3, Polarity::Off),
        ];
        for e in &events {
            net.update(e, &mut ops);
        }
        let incremental = net.features().clone();
        net.dense_refresh(&mut ops);
        for (a, b) in incremental.as_slice().iter().zip(net.features().as_slice()) {
            assert!((a - b).abs() < 1e-4, "incremental {a} vs dense {b}");
        }
    }

    #[test]
    fn update_cost_grows_with_depth_but_stays_local() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut shallow = SubmanifoldNet::new(&[4], 3, (32, 32), &mut rng);
        let mut deep = SubmanifoldNet::new(&[4, 4, 4], 3, (32, 32), &mut rng);
        let mut ops_shallow = OpCount::new();
        let mut ops_deep = OpCount::new();
        // Activate a small cluster first.
        for (i, net, ops) in [
            (0, &mut shallow, &mut ops_shallow),
            (1, &mut deep, &mut ops_deep),
        ] {
            let _ = i;
            for e in [
                Event::new(0, 10, 10, Polarity::On),
                Event::new(1, 11, 10, Polarity::On),
                Event::new(2, 10, 11, Polarity::On),
            ] {
                net.update(&e, ops);
            }
        }
        let r_shallow = shallow.update(&Event::new(10, 10, 10, Polarity::On), &mut ops_shallow);
        let r_deep = deep.update(&Event::new(10, 10, 10, Polarity::On), &mut ops_deep);
        assert!(r_deep >= r_shallow, "deeper nets touch more sites");
        // But still local: far fewer than all sites x layers.
        assert!(r_deep < 3 * 32 * 32 / 4);
    }

    #[test]
    fn global_pool_dimension() {
        let mut rng = Rng64::seed_from_u64(6);
        let mut net = SubmanifoldNet::new(&[4, 7], 3, (8, 8), &mut rng);
        let mut ops = OpCount::new();
        net.update(&Event::new(0, 4, 4, Polarity::On), &mut ops);
        assert_eq!(net.global_pool().len(), 7);
        net.reset();
        assert_eq!(net.active_sites(), 0);
        assert_eq!(net.features().sum(), 0.0);
    }
}
