//! Event-to-frame encoders (paper Fig. 2 centre, §III-B).
//!
//! Each encoder converts a time window of events into a dense `[C, H, W]`
//! tensor. The conversion cost (adds, multiplies, memory writes) is recorded
//! so the Table I "Data – Preparation" row can be measured: dense-frame CNNs
//! pay this cost every frame period, while SNNs and GNNs consume events
//! directly.

//! # Parallelism
//!
//! The per-event accumulation passes of the histogram, voxel-grid and
//! time-surface encoders run on the [`evlab_util::par`] worker pool: the
//! event slice is cut into contiguous chunks (a pure function of its
//! length), each chunk fills a private accumulator, and the partials are
//! reduced into the output frame in chunk-index order. Because neither the
//! chunk boundaries nor the reduction order depend on the thread count, the
//! encoded frame is bit-identical for every `EVLAB_THREADS` setting. Small
//! inputs (under [`MIN_EVENTS_PER_CHUNK`] events per chunk) keep the
//! original single-pass loop. HATS is inherently sequential (each event
//! reads the surface state its predecessors wrote) and stays serial.

use evlab_events::Event;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::{obs, par};
use std::ops::Range;

/// Minimum events per chunk before the encoders fan out; below
/// `2 x` this the single-pass loop wins.
pub const MIN_EVENTS_PER_CHUNK: usize = 8192;
/// Upper bound on encoder chunks, fixed so the chunk structure (and thus
/// the floating-point reduction tree) never depends on the machine.
pub const MAX_CHUNKS: usize = 16;

/// Chunk layout for an event slice: depends only on its length.
fn event_chunks(events: &[Event]) -> Vec<Range<usize>> {
    par::chunk_ranges(
        events.len(),
        par::chunk_count(events.len(), MIN_EVENTS_PER_CHUNK, MAX_CHUNKS),
    )
}

/// Adds each partial accumulator into `data`, in chunk-index order.
fn reduce_add(data: &mut [f32], partials: Vec<Vec<f32>>) {
    for part in &partials {
        for (d, p) in data.iter_mut().zip(part) {
            *d += *p;
        }
    }
}

/// Merges per-chunk "last event time per cell" maps: later chunks hold
/// later events, so their entries overwrite in chunk-index order.
fn reduce_last(partials: Vec<Vec<Option<u64>>>) -> Vec<Option<u64>> {
    let mut iter = partials.into_iter();
    let mut last = iter.next().expect("at least one chunk");
    for part in iter {
        for (l, p) in last.iter_mut().zip(part) {
            if p.is_some() {
                *l = p;
            }
        }
    }
    last
}

/// Records one encoded frame in the observability registry: aggregate
/// event/frame counters plus the per-encoder nonzero density
/// (`cnn.encode.<name>.nonzero_cells` over `cnn.encode.<name>.cells`) —
/// the sparsity the zero-skipping accelerator models feed on. The density
/// scan only runs while observability is on.
fn record_encode_obs(name: &str, events: usize, frame: &Tensor) {
    if !obs::enabled() {
        return;
    }
    let nonzero = frame.as_slice().iter().filter(|&&v| v != 0.0).count();
    obs::counter_add("cnn.encode.frames", 1);
    obs::counter_add("cnn.encode.events", events as u64);
    obs::counter_add(&format!("cnn.encode.{name}.frames"), 1);
    obs::counter_add(&format!("cnn.encode.{name}.nonzero_cells"), nonzero as u64);
    obs::counter_add(&format!("cnn.encode.{name}.cells"), frame.len() as u64);
}

/// Converts a slice of events into a dense frame tensor.
pub trait FrameEncoder {
    /// Number of output channels.
    fn channels(&self) -> usize;

    /// Encodes `events` (time-sorted) into a `[channels, H, W]` tensor for a
    /// `(width, height)` sensor, recording the preparation cost in `ops`.
    fn encode(&self, events: &[Event], resolution: (u16, u16), ops: &mut OpCount) -> Tensor;

    /// Spatial size of the output for a given sensor resolution (identity
    /// for pixel-aligned encoders; coarser for cell-based ones like HATS).
    fn output_resolution(&self, resolution: (u16, u16)) -> (u16, u16) {
        resolution
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Single-channel signed event count: ON events add +1, OFF events −1
/// ([Liu & Delbruck 2018], [Maqueda et al. 2018]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignedCount;

impl SignedCount {
    /// Creates the encoder.
    pub fn new() -> Self {
        SignedCount
    }
}

impl FrameEncoder for SignedCount {
    fn channels(&self) -> usize {
        1
    }

    fn encode(&self, events: &[Event], resolution: (u16, u16), ops: &mut OpCount) -> Tensor {
        let (w, h) = (resolution.0 as usize, resolution.1 as usize);
        let mut frame = Tensor::zeros(&[1, h, w]);
        let data = frame.as_mut_slice();
        let chunks = event_chunks(events);
        if chunks.len() == 1 {
            for e in events {
                data[e.y as usize * w + e.x as usize] += e.polarity.as_sign();
            }
        } else {
            let partials = par::map_chunks(chunks.len(), |c| {
                let mut part = vec![0.0f32; h * w];
                for e in &events[chunks[c].clone()] {
                    part[e.y as usize * w + e.x as usize] += e.polarity.as_sign();
                }
                part
            });
            reduce_add(data, partials);
        }
        ops.record_add(events.len() as u64);
        record_encode_obs(self.name(), events.len(), &frame);
        frame
    }

    fn name(&self) -> &'static str {
        "signed-count"
    }
}

/// Two-channel polarity histogram: ON counts in channel 0, OFF counts in
/// channel 1 (Fig. 2 centre).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TwoChannel;

impl TwoChannel {
    /// Creates the encoder.
    pub fn new() -> Self {
        TwoChannel
    }
}

impl FrameEncoder for TwoChannel {
    fn channels(&self) -> usize {
        2
    }

    fn encode(&self, events: &[Event], resolution: (u16, u16), ops: &mut OpCount) -> Tensor {
        let (w, h) = (resolution.0 as usize, resolution.1 as usize);
        let mut frame = Tensor::zeros(&[2, h, w]);
        let data = frame.as_mut_slice();
        let chunks = event_chunks(events);
        if chunks.len() == 1 {
            for e in events {
                let c = e.polarity.channel();
                data[(c * h + e.y as usize) * w + e.x as usize] += 1.0;
            }
        } else {
            let partials = par::map_chunks(chunks.len(), |ci| {
                let mut part = vec![0.0f32; 2 * h * w];
                for e in &events[chunks[ci].clone()] {
                    let c = e.polarity.channel();
                    part[(c * h + e.y as usize) * w + e.x as usize] += 1.0;
                }
                part
            });
            reduce_add(data, partials);
        }
        ops.record_add(events.len() as u64);
        record_encode_obs(self.name(), events.len(), &frame);
        frame
    }

    fn name(&self) -> &'static str {
        "two-channel"
    }
}

/// Exponential time surface ([Sironi et al. 2018]): each pixel holds
/// `exp(-(t_end - t_last) / tau)` for its most recent event, per polarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSurface {
    /// Decay constant in microseconds.
    pub tau_us: f64,
}

impl TimeSurface {
    /// Creates a time surface with decay `tau_us`.
    ///
    /// # Panics
    ///
    /// Panics if `tau_us <= 0`.
    pub fn new(tau_us: f64) -> Self {
        assert!(tau_us > 0.0, "tau must be positive");
        TimeSurface { tau_us }
    }
}

impl FrameEncoder for TimeSurface {
    fn channels(&self) -> usize {
        2
    }

    fn encode(&self, events: &[Event], resolution: (u16, u16), ops: &mut OpCount) -> Tensor {
        let (w, h) = (resolution.0 as usize, resolution.1 as usize);
        let t_end = events.last().map(|e| e.t.as_micros()).unwrap_or(0);
        // Last event time per pixel per polarity. Last-write-wins is
        // order-dependent only within a pixel, and chunks are in time
        // order, so the chunked merge is exact.
        let chunks = event_chunks(events);
        let last: Vec<Option<u64>> = if chunks.len() == 1 {
            let mut last = vec![None; 2 * w * h];
            for e in events {
                let c = e.polarity.channel();
                last[(c * h + e.y as usize) * w + e.x as usize] = Some(e.t.as_micros());
            }
            last
        } else {
            reduce_last(par::map_chunks(chunks.len(), |ci| {
                let mut part = vec![None; 2 * w * h];
                for e in &events[chunks[ci].clone()] {
                    let c = e.polarity.channel();
                    part[(c * h + e.y as usize) * w + e.x as usize] =
                        Some(e.t.as_micros());
                }
                part
            }))
        };
        ops.record_write(events.len() as u64);
        let mut frame = Tensor::zeros(&[2, h, w]);
        let data = frame.as_mut_slice();
        let mut exp_evals = 0u64;
        for (i, t) in last.iter().enumerate() {
            if let Some(t_last) = t {
                let dt = t_end.saturating_sub(*t_last) as f64;
                data[i] = (-dt / self.tau_us).exp() as f32;
                exp_evals += 1;
            }
        }
        // Model exp as ~4 multiplies (polynomial/LUT evaluation).
        ops.record_mult(4 * exp_evals);
        record_encode_obs(self.name(), events.len(), &frame);
        frame
    }

    fn name(&self) -> &'static str {
        "time-surface"
    }
}

/// Linear time surface: pixel value is the normalized age
/// `1 - (t_end - t_last)/window`, clamped at zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearTimeSurface {
    /// Window length in microseconds used for normalization.
    pub window_us: u64,
}

impl LinearTimeSurface {
    /// Creates a linear time surface over `window_us`.
    ///
    /// # Panics
    ///
    /// Panics if `window_us == 0`.
    pub fn new(window_us: u64) -> Self {
        assert!(window_us > 0, "window must be positive");
        LinearTimeSurface { window_us }
    }
}

impl FrameEncoder for LinearTimeSurface {
    fn channels(&self) -> usize {
        2
    }

    fn encode(&self, events: &[Event], resolution: (u16, u16), ops: &mut OpCount) -> Tensor {
        let (w, h) = (resolution.0 as usize, resolution.1 as usize);
        let t_end = events.last().map(|e| e.t.as_micros()).unwrap_or(0);
        let mut frame = Tensor::zeros(&[2, h, w]);
        let data = frame.as_mut_slice();
        let surface = |t_us: u64| {
            let age = t_end.saturating_sub(t_us) as f64 / self.window_us as f64;
            (1.0 - age).max(0.0) as f32
        };
        let chunks = event_chunks(events);
        if chunks.len() == 1 {
            for e in events {
                let c = e.polarity.channel();
                data[(c * h + e.y as usize) * w + e.x as usize] =
                    surface(e.t.as_micros());
            }
        } else {
            // Only the last event per cell determines its value, so track
            // timestamps per chunk and evaluate the surface once per cell.
            let last = reduce_last(par::map_chunks(chunks.len(), |ci| {
                let mut part = vec![None; 2 * w * h];
                for e in &events[chunks[ci].clone()] {
                    let c = e.polarity.channel();
                    part[(c * h + e.y as usize) * w + e.x as usize] =
                        Some(e.t.as_micros());
                }
                part
            }));
            for (d, t) in data.iter_mut().zip(&last) {
                if let Some(t_us) = t {
                    *d = surface(*t_us);
                }
            }
        }
        ops.record_mult(events.len() as u64);
        ops.record_write(events.len() as u64);
        record_encode_obs(self.name(), events.len(), &frame);
        frame
    }

    fn name(&self) -> &'static str {
        "linear-time-surface"
    }
}

/// Voxel grid ([Gehrig et al. 2019], [Zhu et al. 2018]): events are
/// distributed over `bins` temporal channels with bilinear weighting,
/// preserving coarse timing inside the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoxelGrid {
    /// Number of temporal bins.
    pub bins: usize,
}

impl VoxelGrid {
    /// Creates a voxel grid with `bins` temporal channels.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        VoxelGrid { bins }
    }
}

impl FrameEncoder for VoxelGrid {
    fn channels(&self) -> usize {
        self.bins
    }

    fn encode(&self, events: &[Event], resolution: (u16, u16), ops: &mut OpCount) -> Tensor {
        let (w, h) = (resolution.0 as usize, resolution.1 as usize);
        let mut frame = Tensor::zeros(&[self.bins, h, w]);
        if events.is_empty() {
            return frame;
        }
        let t0 = events.first().expect("non-empty").t.as_micros() as f64;
        let t1 = events.last().expect("non-empty").t.as_micros() as f64;
        let span = (t1 - t0).max(1.0);
        let data = frame.as_mut_slice();
        let bins = self.bins;
        let accumulate = |data: &mut [f32], e: &Event| {
            let pos = (e.t.as_micros() as f64 - t0) / span * (bins - 1) as f64;
            let b0 = pos.floor() as usize;
            let frac = (pos - b0 as f64) as f32;
            let sign = e.polarity.as_sign();
            let idx = e.y as usize * w + e.x as usize;
            data[b0 * h * w + idx] += sign * (1.0 - frac);
            if b0 + 1 < bins {
                data[(b0 + 1) * h * w + idx] += sign * frac;
            }
        };
        let chunks = event_chunks(events);
        if chunks.len() == 1 {
            for e in events {
                accumulate(data, e);
            }
        } else {
            let partials = par::map_chunks(chunks.len(), |ci| {
                let mut part = vec![0.0f32; bins * h * w];
                for e in &events[chunks[ci].clone()] {
                    accumulate(&mut part, e);
                }
                part
            });
            reduce_add(data, partials);
        }
        // Two weighted accumulations (mult + add) per event.
        ops.record_mult(2 * events.len() as u64);
        ops.record_add(2 * events.len() as u64);
        record_encode_obs(self.name(), events.len(), &frame);
        frame
    }

    fn name(&self) -> &'static str {
        "voxel-grid"
    }
}

/// Joint event-count + latest-timestamp representation
/// ([Zhu et al. EV-FlowNet]): four channels — ON count, OFF count,
/// normalized most-recent ON timestamp, normalized most-recent OFF
/// timestamp. Counting and timing in one tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountAndSurface;

impl CountAndSurface {
    /// Creates the encoder.
    pub fn new() -> Self {
        CountAndSurface
    }
}

impl FrameEncoder for CountAndSurface {
    fn channels(&self) -> usize {
        4
    }

    fn encode(&self, events: &[Event], resolution: (u16, u16), ops: &mut OpCount) -> Tensor {
        let (w, h) = (resolution.0 as usize, resolution.1 as usize);
        let mut frame = Tensor::zeros(&[4, h, w]);
        if events.is_empty() {
            return frame;
        }
        let t0 = events.first().expect("non-empty").t.as_micros() as f64;
        let t1 = events.last().expect("non-empty").t.as_micros() as f64;
        let span = (t1 - t0).max(1.0);
        let data = frame.as_mut_slice();
        let stamp = |t_us: u64| ((t_us as f64 - t0) / span) as f32;
        let chunks = event_chunks(events);
        if chunks.len() == 1 {
            for e in events {
                let c = e.polarity.channel();
                let idx = e.y as usize * w + e.x as usize;
                data[c * h * w + idx] += 1.0;
                data[(2 + c) * h * w + idx] = stamp(e.t.as_micros());
            }
        } else {
            // Counts are additive (ordered reduction); timestamps are
            // last-write-wins (chunk-order overwrite merge).
            let partials = par::map_chunks(chunks.len(), |ci| {
                let mut counts = vec![0.0f32; 2 * h * w];
                let mut last = vec![None; 2 * h * w];
                for e in &events[chunks[ci].clone()] {
                    let c = e.polarity.channel();
                    let idx = e.y as usize * w + e.x as usize;
                    counts[c * h * w + idx] += 1.0;
                    last[c * h * w + idx] = Some(e.t.as_micros());
                }
                (counts, last)
            });
            let (count_parts, last_parts): (Vec<_>, Vec<_>) =
                partials.into_iter().unzip();
            reduce_add(&mut data[..2 * h * w], count_parts);
            let last = reduce_last(last_parts);
            for (d, t) in data[2 * h * w..].iter_mut().zip(&last) {
                if let Some(t_us) = t {
                    *d = stamp(*t_us);
                }
            }
        }
        ops.record_add(events.len() as u64);
        ops.record_mult(events.len() as u64);
        ops.record_write(2 * events.len() as u64);
        record_encode_obs(self.name(), events.len(), &frame);
        frame
    }

    fn name(&self) -> &'static str {
        "count-and-surface"
    }
}

/// Histograms of Averaged Time Surfaces ([Sironi et al. HATS]): the sensor
/// is tiled into `cell × cell` regions; every event contributes its local
/// exponential time surface (a `(2R+1)²` patch per polarity), and each
/// region averages the surfaces of its events. The output tensor has one
/// channel per patch coordinate and polarity over the coarse cell grid —
/// a compact, noise-robust descriptor.
///
/// HATS is causal: every event reads the surface state written by all
/// earlier events, so the encoder runs serially regardless of
/// `EVLAB_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hats {
    /// Cell size in pixels.
    pub cell: usize,
    /// Surface neighbourhood radius R.
    pub radius: usize,
    /// Exponential decay constant in microseconds.
    pub tau_us: f64,
}

impl Hats {
    /// Creates a HATS encoder.
    ///
    /// # Panics
    ///
    /// Panics if `cell == 0` or `tau_us <= 0`.
    pub fn new(cell: usize, radius: usize, tau_us: f64) -> Self {
        assert!(cell > 0, "cell must be positive");
        assert!(tau_us > 0.0, "tau must be positive");
        Hats {
            cell,
            radius,
            tau_us,
        }
    }

    fn patch_dim(&self) -> usize {
        (2 * self.radius + 1) * (2 * self.radius + 1)
    }
}

impl FrameEncoder for Hats {
    fn channels(&self) -> usize {
        2 * self.patch_dim()
    }

    fn output_resolution(&self, resolution: (u16, u16)) -> (u16, u16) {
        (
            resolution.0.div_ceil(self.cell as u16),
            resolution.1.div_ceil(self.cell as u16),
        )
    }

    fn encode(&self, events: &[Event], resolution: (u16, u16), ops: &mut OpCount) -> Tensor {
        let (w, h) = (resolution.0 as usize, resolution.1 as usize);
        let (cw, ch) = (w.div_ceil(self.cell), h.div_ceil(self.cell));
        let patch = self.patch_dim();
        let side = 2 * self.radius + 1;
        let mut sums = vec![0.0f64; 2 * patch * cw * ch];
        let mut counts = vec![0u32; 2 * cw * ch];
        // Per-pixel, per-polarity last-event time, maintained causally.
        let mut last: Vec<Option<u64>> = vec![None; 2 * w * h];
        for e in events {
            let p = e.polarity.channel();
            let t = e.t.as_micros();
            let (cx, cy) = (e.x as usize / self.cell, e.y as usize / self.cell);
            let cell_idx = p * cw * ch + cy * cw + cx;
            counts[cell_idx] += 1;
            for dy in 0..side {
                let ny = e.y as isize + dy as isize - self.radius as isize;
                if ny < 0 || ny >= h as isize {
                    continue;
                }
                for dx in 0..side {
                    let nx = e.x as isize + dx as isize - self.radius as isize;
                    if nx < 0 || nx >= w as isize {
                        continue;
                    }
                    if let Some(tn) = last[p * w * h + ny as usize * w + nx as usize] {
                        let decay = (-((t - tn) as f64) / self.tau_us).exp();
                        let channel = p * patch + dy * side + dx;
                        sums[channel * cw * ch + cy * cw + cx] += decay;
                        ops.record_mult(4); // LUT exp + accumulate
                        ops.record_add(1);
                    }
                }
            }
            last[p * w * h + e.y as usize * w + e.x as usize] = Some(t);
        }
        let mut frame = Tensor::zeros(&[2 * patch, ch, cw]);
        let data = frame.as_mut_slice();
        for p in 0..2 {
            for cell in 0..cw * ch {
                let n = counts[p * cw * ch + cell];
                if n == 0 {
                    continue;
                }
                for k in 0..patch {
                    let channel = p * patch + k;
                    data[channel * cw * ch + cell] =
                        (sums[channel * cw * ch + cell] / n as f64) as f32;
                }
            }
        }
        ops.record_mult((2 * patch * cw * ch) as u64);
        record_encode_obs(self.name(), events.len(), &frame);
        frame
    }

    fn name(&self) -> &'static str {
        "hats"
    }
}

/// Normalizes a frame by its standard deviation (no mean subtraction, so
/// the zero background stays exactly zero — the sparsity zero-skipping
/// accelerators rely on). No-op for all-zero frames.
pub fn normalize(frame: &Tensor) -> Tensor {
    let n = frame.len() as f32;
    let var: f32 = frame.as_slice().iter().map(|&v| v * v).sum::<f32>() / n;
    if var < 1e-12 {
        return frame.clone();
    }
    let std = var.sqrt();
    frame.map(|v| v / std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::Polarity;

    fn events() -> Vec<Event> {
        vec![
            Event::new(0, 1, 1, Polarity::On),
            Event::new(500, 1, 1, Polarity::On),
            Event::new(1_000, 2, 3, Polarity::Off),
        ]
    }

    #[test]
    fn signed_count_accumulates_polarity() {
        let mut ops = OpCount::new();
        let f = SignedCount::new().encode(&events(), (4, 4), &mut ops);
        assert_eq!(f.shape(), &[1, 4, 4]);
        assert_eq!(f.at(&[0, 1, 1]), 2.0);
        assert_eq!(f.at(&[0, 3, 2]), -1.0);
        assert_eq!(ops.adds, 3);
    }

    #[test]
    fn two_channel_separates_polarity() {
        let mut ops = OpCount::new();
        let f = TwoChannel::new().encode(&events(), (4, 4), &mut ops);
        assert_eq!(f.at(&[0, 1, 1]), 2.0);
        assert_eq!(f.at(&[1, 3, 2]), 1.0);
        assert_eq!(f.at(&[1, 1, 1]), 0.0);
    }

    #[test]
    fn time_surface_decays_with_age() {
        let mut ops = OpCount::new();
        let f = TimeSurface::new(500.0).encode(&events(), (4, 4), &mut ops);
        // Pixel (1,1) last fired at t=500; end is t=1000 -> exp(-1).
        let v_old = f.at(&[0, 1, 1]);
        let v_new = f.at(&[1, 3, 2]); // fired at t_end -> 1.0
        assert!((v_old - (-1.0f32).exp()).abs() < 1e-5);
        assert!((v_new - 1.0).abs() < 1e-6);
        assert!(v_new > v_old);
    }

    #[test]
    fn linear_time_surface_clamps() {
        let mut ops = OpCount::new();
        let f = LinearTimeSurface::new(800).encode(&events(), (4, 4), &mut ops);
        // Age of (1,1): 500/800 -> 0.375 surface.
        assert!((f.at(&[0, 1, 1]) - 0.375).abs() < 1e-6);
        assert_eq!(f.at(&[1, 3, 2]), 1.0);
    }

    #[test]
    fn voxel_grid_preserves_temporal_order() {
        let mut ops = OpCount::new();
        let f = VoxelGrid::new(4).encode(&events(), (4, 4), &mut ops);
        assert_eq!(f.shape(), &[4, 4, 4]);
        // First event lands fully in bin 0, last in the final bin.
        assert!(f.at(&[0, 1, 1]) > 0.5);
        assert!(f.at(&[3, 3, 2]) < -0.5);
        // Middle event (t=500 of 1000) splits between bins 1 and 2.
        assert!(f.at(&[1, 1, 1]) > 0.0 && f.at(&[2, 1, 1]) > 0.0);
    }

    #[test]
    fn count_and_surface_tracks_both_quantities() {
        let mut ops = OpCount::new();
        let f = CountAndSurface::new().encode(&events(), (4, 4), &mut ops);
        assert_eq!(f.shape(), &[4, 4, 4]);
        assert_eq!(f.at(&[0, 1, 1]), 2.0, "ON count");
        assert_eq!(f.at(&[1, 3, 2]), 1.0, "OFF count");
        // Latest ON at (1,1) was t=500 of span 1000 -> 0.5.
        assert!((f.at(&[2, 1, 1]) - 0.5).abs() < 1e-6);
        assert!((f.at(&[3, 3, 2]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hats_averages_local_surfaces() {
        let hats = Hats::new(4, 1, 500.0);
        assert_eq!(hats.channels(), 18); // 2 polarities x 3x3 patch
        let mut ops = OpCount::new();
        // Two ON events at the same pixel 500us apart: the second sees the
        // first at the patch centre with decay exp(-1).
        let evs = vec![
            Event::new(0, 1, 1, Polarity::On),
            Event::new(500, 1, 1, Polarity::On),
        ];
        let f = hats.encode(&evs, (8, 8), &mut ops);
        assert_eq!(f.shape(), &[18, 2, 2]);
        // Patch centre channel for ON polarity: offset (dy=1, dx=1) -> k=4.
        let center = f.at(&[4, 0, 0]);
        assert!(
            (center - (-1.0f32).exp() / 2.0).abs() < 1e-4,
            "centre {center}: one of two events saw decay exp(-1)"
        );
        // A neighbouring patch cell never fired: zero.
        assert_eq!(f.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn hats_is_causal() {
        // An event must not see surfaces of *later* events.
        let hats = Hats::new(4, 1, 500.0);
        let mut ops = OpCount::new();
        let only_later = vec![
            Event::new(0, 1, 1, Polarity::On),
            Event::new(100, 5, 5, Polarity::On), // far away
        ];
        let f = hats.encode(&only_later, (8, 8), &mut ops);
        // First event had an empty neighbourhood: its cell's average
        // surface is all zero except nothing (no prior events).
        let patch_sum: f32 = (0..18).map(|c| f.at(&[c, 0, 0])).sum();
        assert_eq!(patch_sum, 0.0);
    }

    #[test]
    fn encoders_handle_empty_input() {
        let mut ops = OpCount::new();
        let encs: Vec<Box<dyn FrameEncoder>> = vec![
            Box::new(SignedCount::new()),
            Box::new(TwoChannel::new()),
            Box::new(TimeSurface::new(100.0)),
            Box::new(LinearTimeSurface::new(100)),
            Box::new(VoxelGrid::new(3)),
            Box::new(CountAndSurface::new()),
            Box::new(Hats::new(4, 1, 100.0)),
        ];
        for e in encs {
            let f = e.encode(&[], (4, 4), &mut ops);
            assert_eq!(f.sum(), 0.0, "{} not empty", e.name());
            assert_eq!(f.shape()[0], e.channels());
        }
    }

    #[test]
    fn preparation_cost_scales_with_events() {
        let many: Vec<Event> = (0..1000)
            .map(|i| Event::new(i, (i % 4) as u16, 0, Polarity::On))
            .collect();
        let mut ops_small = OpCount::new();
        let mut ops_large = OpCount::new();
        SignedCount::new().encode(&events(), (4, 4), &mut ops_small);
        SignedCount::new().encode(&many, (4, 4), &mut ops_large);
        assert!(ops_large.adds > 100 * ops_small.adds);
    }

    #[test]
    fn normalize_scales_and_preserves_zeros() {
        let f = Tensor::from_vec(&[1, 1, 4], vec![0.0, 2.0, 0.0, 4.0]).expect("ok");
        let n = normalize(&f);
        // Zeros stay exactly zero: sparsity survives normalization.
        assert_eq!(n.zero_fraction(), 0.5);
        let power: f32 = n.as_slice().iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((power - 1.0).abs() < 1e-5);
        // All-zero frame untouched.
        let z = Tensor::zeros(&[1, 2, 2]);
        assert_eq!(normalize(&z), z);
    }
}
