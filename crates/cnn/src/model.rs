//! CNN classifier architectures.

use evlab_tensor::layer::{Conv2d, Flatten, Linear, MaxPool2d, Relu};
use evlab_tensor::Sequential;
use evlab_util::Rng64;

/// Architecture hyperparameters for the standard classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CnnConfig {
    /// Input channels (set to the encoder's channel count).
    pub in_channels: usize,
    /// Input spatial size (square).
    pub input_size: usize,
    /// Channels of the first conv block; the second uses twice as many.
    pub base_channels: usize,
    /// Hidden units of the classifier head.
    pub hidden: usize,
    /// Output classes.
    pub num_classes: usize,
}

impl CnnConfig {
    /// A small configuration suitable for 32×32 inputs.
    pub fn small(in_channels: usize, input_size: usize, num_classes: usize) -> Self {
        CnnConfig {
            in_channels,
            input_size,
            base_channels: 8,
            hidden: 64,
            num_classes,
        }
    }

    /// Returns a copy scaled by a width multiplier (for the scalability
    /// sweep of Table I row "Configurability / Scalability").
    ///
    /// # Panics
    ///
    /// Panics if `multiplier == 0`.
    pub fn scaled(mut self, multiplier: usize) -> Self {
        assert!(multiplier > 0, "multiplier must be positive");
        self.base_channels *= multiplier;
        self.hidden *= multiplier;
        self
    }
}

/// Builds the LeNet-style classifier:
/// `conv3x3 → ReLU → pool2 → conv3x3 → ReLU → pool2 → flatten → fc → ReLU → fc`.
///
/// # Panics
///
/// Panics if `input_size` is not divisible by 4.
///
/// # Examples
///
/// ```
/// use evlab_cnn::model::{build_cnn, CnnConfig};
/// use evlab_util::Rng64;
///
/// let mut rng = Rng64::seed_from_u64(0);
/// let net = build_cnn(&CnnConfig::small(2, 32, 10), &mut rng);
/// assert_eq!(net.output_shape(&[2, 32, 32]), vec![10]);
/// ```
pub fn build_cnn(config: &CnnConfig, rng: &mut Rng64) -> Sequential {
    assert!(
        config.input_size.is_multiple_of(4),
        "input size must be divisible by 4 (two 2x pools)"
    );
    let c1 = config.base_channels;
    let c2 = config.base_channels * 2;
    let spatial_after = config.input_size / 4;
    let mut net = Sequential::new();
    net.push(Conv2d::new(config.in_channels, c1, 3, 1, rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2));
    net.push(Conv2d::new(c1, c2, 3, 1, rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2));
    net.push(Flatten::new());
    net.push(Linear::new(c2 * spatial_after * spatial_after, config.hidden, rng));
    net.push(Relu::new());
    net.push(Linear::new(config.hidden, config.num_classes, rng));
    net
}

/// Builds a single-hidden-layer MLP baseline over flattened frames — the
/// floor any convolutional model should beat.
pub fn build_mlp(
    input_len: usize,
    hidden: usize,
    num_classes: usize,
    rng: &mut Rng64,
) -> Sequential {
    let mut net = Sequential::new();
    net.push(Flatten::new());
    net.push(Linear::new(input_len, hidden, rng));
    net.push(Relu::new());
    net.push(Linear::new(hidden, num_classes, rng));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_tensor::{OpCount, Tensor};

    #[test]
    fn cnn_shapes_flow() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut net = build_cnn(&CnnConfig::small(2, 32, 10), &mut rng);
        let mut ops = OpCount::new();
        let y = net.forward(&Tensor::zeros(&[2, 32, 32]), &mut ops);
        assert_eq!(y.shape(), &[10]);
        assert!(net.param_count() > 1_000);
    }

    #[test]
    fn scaled_config_grows_parameters() {
        let mut rng = Rng64::seed_from_u64(2);
        let base = build_cnn(&CnnConfig::small(2, 32, 4), &mut rng);
        let wide = build_cnn(&CnnConfig::small(2, 32, 4).scaled(2), &mut rng);
        assert!(wide.param_count() > 2 * base.param_count());
    }

    #[test]
    fn mlp_baseline_shapes() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut net = build_mlp(2 * 32 * 32, 32, 4, &mut rng);
        let mut ops = OpCount::new();
        let y = net.forward(&Tensor::zeros(&[2, 32, 32]), &mut ops);
        assert_eq!(y.shape(), &[4]);
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn bad_input_size_panics() {
        let mut rng = Rng64::seed_from_u64(4);
        build_cnn(&CnnConfig::small(2, 30, 4), &mut rng);
    }
}
