//! # evlab — an event-camera processing laboratory
//!
//! `evlab` is a from-scratch Rust reproduction of the system landscape
//! surveyed in *"The CNN vs. SNN Event-camera Dichotomy and Perspectives For
//! Event-Graph Neural Networks"* (Dalgaty et al., DATE 2023). It provides an
//! event-camera simulator, the three competing processing paradigms —
//! dense-frame CNNs, spiking neural networks, and event-graph neural
//! networks — implemented on a shared tensor substrate, and first-order
//! hardware cost models of the accelerator families the paper reviews, so
//! that the paper's qualitative comparison (its Table I) can be regenerated
//! as measured quantities.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! * [`events`] — event types, streams, AER codec, filters ([`evlab_events`])
//! * [`sensor`] — DVS pixel/camera simulator and the Fig. 1 sensor database
//! * [`datasets`] — synthetic labelled event datasets
//! * [`tensor`] — minimal dense/sparse tensor + NN substrate with op counting
//! * [`cnn`], [`snn`], [`gnn`] — the three paradigms
//! * [`hw`] — accelerator energy/latency models
//! * [`core`] — the unified [`core::EventClassifier`] API and the
//!   Table I comparison runner
//! * [`serve`] — streaming inference runtime: concurrent AER sessions,
//!   bounded queues with load shedding, fair round-robin scheduling
//!
//! # Quickstart
//!
//! ```
//! use evlab::sensor::{CameraConfig, EventCamera};
//! use evlab::sensor::scene::MovingBar;
//!
//! let scene = MovingBar::horizontal(0.0002, 4.0);
//! let camera = EventCamera::new(CameraConfig::new((32, 32)));
//! let stream = camera.record(&scene, 0, 20_000, 42);
//! assert!(!stream.is_empty());
//! ```

pub use evlab_core as core;
pub use evlab_cnn as cnn;
pub use evlab_datasets as datasets;
pub use evlab_events as events;
pub use evlab_gnn as gnn;
pub use evlab_hw as hw;
pub use evlab_sensor as sensor;
pub use evlab_serve as serve;
pub use evlab_snn as snn;
pub use evlab_tensor as tensor;
pub use evlab_util as util;
