#!/usr/bin/env bash
# Offline verification gate for evlab.
#
# Runs, in order:
#   1. the hermetic release build;
#   2. `cargo clippy --workspace -- -D warnings` (offline lint gate);
#   3. the full workspace test suite;
#   4. the kernel bit-identity tests (tests/kernel_equivalence.rs):
#      blocked GEMM and im2col conv2d forward/backward must reproduce
#      their naive loop-nest oracles bit for bit, and Scratch-arena reuse
#      must be invisible;
#   5. a smoke sweep of the `hotpaths` benchmark at EVLAB_THREADS ∈
#      {1, 2, 4, 8} — the binary exits non-zero if any thread count
#      produces output whose checksum differs from the serial run. The
#      sweep now covers the blocked kernels themselves (`gemm`,
#      `conv_fwd`, `cnn_step` are panel/batch-parallel with fixed
#      partitions and ordered reductions), so this gates the kernels'
#      bitwise thread-count invariance, and the run still fails if
#      `gemm` vs `gemm_naive` / `conv_fwd` vs `conv_fwd_naive` checksums
#      disagree. This run is built with `--features count-alloc`, which
#      installs the counting global allocator: the binary additionally
#      fails if any instrumented workload's steady-state allocation
#      count exceeds the committed BENCH_alloc_budget.json (all zeros —
#      the per-worker arena contract must hold at every thread count);
#   6. a smoke run of `serve_bench` (4 concurrent sessions per paradigm,
#      16-deep queues under 64-event bursts) — the binary exits non-zero
#      unless load was actually shed AND decisions kept flowing, which is
#      the serving runtime's graceful-degradation contract;
#   7. a smoke run of `chaos_bench` (seeded fault injection: packet drop,
#      AER bit corruption, timestamp jitter across all three paradigms) —
#      the binary exits non-zero unless faults fired, the hardened
#      ingress quarantined what it could not salvage, and every
#      degradation curve is monotone non-increasing in the fault rate;
#   8. a smoke run of `recovery_bench` (crash-consistent checkpointing:
#      snapshot + WAL recovery across all three paradigms, with a torn
#      WAL tail forced) — the binary exits non-zero unless every
#      recovered session is bit-identical to its uncrashed oracle;
#   9. a smoke run of `fuzz_lab` (differential fuzzing: naive vs
#      optimized graph builders, blocked vs naive GEMM, serial vs
#      threaded execution, checkpoint/restore vs uninterrupted oracle,
#      reorder buffer vs its contract model, json writer/parser round
#      trips — 8 seeds per target plus the committed regression corpus,
#      with `evlab_util::check` runtime invariants forced on) — the
#      binary exits non-zero on any mismatch, panic, or invariant
#      violation, and `obs_check --forbid 'check.*violations'` re-checks
#      the metrics for invariant-violation counters;
#  10. the full workspace test suite again under `EVLAB_CHECK=1`, so
#      every release-profile test also runs with the runtime invariant
#      layer active (debug builds get it from `debug_assertions`);
#  11. a clippy gate denying `unwrap()`/`expect()` on the ingestion,
#      serving, kernel, graph and util crates — faults on those paths
#      must surface as errors and quarantine counters, never as panics.
#
# The smoke runs execute under EVLAB_OBS=1 with --metrics; afterwards
# `obs_check` re-parses each metrics file with the crate's own JSON
# parser and fails if any required counter is zero — for hotpaths the
# built-in pipeline-stage list, for serve_bench the `serve.*` ingress,
# shedding and decision counters, for chaos_bench the `fault.*` injection
# counters plus the quarantine/supervisor ones (via --require; a trailing
# `.*` requires at least one nonzero counter under that prefix).
#
# Usage: scripts/verify.sh
# Requires no network access: the workspace has zero registry
# dependencies and must build with `--offline`.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo clippy --workspace --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test --workspace --offline"
cargo test -q --workspace --offline

out="$(mktemp /tmp/evlab_hotpaths_smoke.XXXXXX.json)"
metrics="$(mktemp /tmp/evlab_hotpaths_obs.XXXXXX.json)"
serve_out="$(mktemp /tmp/evlab_serve_smoke.XXXXXX.json)"
serve_metrics="$(mktemp /tmp/evlab_serve_obs.XXXXXX.json)"
chaos_out="$(mktemp /tmp/evlab_chaos_smoke.XXXXXX.json)"
chaos_metrics="$(mktemp /tmp/evlab_chaos_obs.XXXXXX.json)"
recovery_out="$(mktemp /tmp/evlab_recovery_smoke.XXXXXX.json)"
recovery_metrics="$(mktemp /tmp/evlab_recovery_obs.XXXXXX.json)"
fuzz_metrics="$(mktemp /tmp/evlab_fuzz_obs.XXXXXX.json)"
trap 'rm -f "$out" "$metrics" "$serve_out" "$serve_metrics" "$chaos_out" "$chaos_metrics" "$recovery_out" "$recovery_metrics" "$fuzz_metrics"' EXIT

echo "==> kernel bit-identity tests (blocked kernels vs naive oracles)"
cargo test -q --offline --test kernel_equivalence

echo "==> hotpaths smoke sweep (threads 1, 2, 4, 8; kernel checksum- and alloc-budget-gated; obs on)"
EVLAB_OBS=1 cargo run -q --release --offline -p evlab-bench --features count-alloc \
    --bin hotpaths -- --smoke --out "$out" --metrics "$metrics"

echo "==> obs_check: metrics parse + every pipeline stage reported activity"
cargo run -q --release --offline -p evlab-bench --bin obs_check -- "$metrics"

echo "==> obs_check: dense-kernel counters nonzero (gemm dispatch + conv lowering)"
cargo run -q --release --offline -p evlab-bench --bin obs_check -- \
    --require tensor.gemm.calls \
    --require tensor.gemm.par_chunks \
    --require tensor.conv.forward \
    --require tensor.conv.backward \
    --require tensor.conv.im2col_chunks \
    "$metrics"

echo "==> obs_check: sliding-window counters nonzero (inserts, evictions, reselects)"
cargo run -q --release --offline -p evlab-bench --bin obs_check -- \
    --require 'gnn.window.*' \
    --require gnn.window.inserts \
    --require gnn.window.evictions \
    "$metrics"

echo "==> serve_bench smoke (4 sessions/paradigm, forced overload, obs on)"
EVLAB_OBS=1 cargo run -q --release --offline -p evlab-bench --bin serve_bench -- \
    --smoke --out "$serve_out" --metrics "$serve_metrics"

echo "==> obs_check: serving ingress, shedding and decision counters nonzero"
cargo run -q --release --offline -p evlab-bench --bin obs_check -- \
    --require serve.session.opened \
    --require serve.queue.offered \
    --require serve.queue.accepted \
    --require serve.shed.oldest \
    --require serve.session.decisions \
    "$serve_metrics"

echo "==> chaos_bench smoke (seeded faults x 3 paradigms; monotone degradation gated)"
EVLAB_OBS=1 cargo run -q --release --offline -p evlab-bench --bin chaos_bench -- \
    --smoke --out "$chaos_out" --metrics "$chaos_metrics"

echo "==> obs_check: fault injection, quarantine and supervisor counters nonzero"
cargo run -q --release --offline -p evlab-bench --bin obs_check -- \
    --require 'fault.*' \
    --require ingest.quarantined \
    --require ingest.late_dropped \
    --require serve.supervisor.restarts \
    "$chaos_metrics"

echo "==> recovery_bench smoke (crash + torn WAL tail x 3 paradigms; bit-identical recovery gated)"
EVLAB_OBS=1 cargo run -q --release --offline -p evlab-bench --bin recovery_bench -- \
    --smoke --out "$recovery_out" --metrics "$recovery_metrics"

echo "==> obs_check: checkpoint and write-ahead-log counters nonzero"
cargo run -q --release --offline -p evlab-bench --bin obs_check -- \
    --require 'ckpt.*' \
    --require 'wal.*' \
    --require wal.torn_tails \
    "$recovery_metrics"

echo "==> fuzz_lab smoke (6 differential targets + regression corpus; invariants forced on)"
EVLAB_OBS=1 EVLAB_CHECK=1 cargo run -q --release --offline -p evlab-bench --bin fuzz_lab -- \
    --smoke --metrics "$fuzz_metrics"

echo "==> obs_check: fuzz cases ran, zero invariant-violation counters"
cargo run -q --release --offline -p evlab-bench --bin obs_check -- \
    --require fuzz.cases \
    --require fuzz.targets \
    --require fuzz.regressions \
    --require check.runs \
    --forbid 'check.*violations' \
    "$fuzz_metrics"

echo "==> cargo test --workspace under EVLAB_CHECK=1 (runtime invariant layer active)"
EVLAB_CHECK=1 cargo test -q --workspace --offline

echo "==> clippy panic gate: no unwrap/expect on ingestion, serving, kernel, graph and util paths"
cargo clippy -p evlab-events -p evlab-serve -p evlab-tensor -p evlab-gnn -p evlab-util --no-deps --offline -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "==> OK: build, lints, tests, kernel bit-identity, hot-path determinism, alloc budget, serving degradation, chaos degradation, crash recovery, differential fuzzing, runtime invariants and observability all pass"
