#!/usr/bin/env bash
# Offline verification gate for evlab.
#
# Runs the hermetic build, the full workspace test suite and a smoke
# sweep of the `hotpaths` benchmark at EVLAB_THREADS ∈ {1, 2}. The
# hotpaths binary exits non-zero if any thread count produces output
# whose checksum differs from the serial run, so a determinism
# regression in any of the four parallelized hot paths fails this
# script.
#
# The smoke sweep runs under EVLAB_OBS=1 with --metrics: afterwards
# `obs_check` re-parses the emitted metrics file with the crate's own
# JSON parser and fails if any pipeline stage (camera, encoders, both
# SNN engines, graph builders — including the capped build's
# gnn.serial_fallback) reported zero activity.
#
# Usage: scripts/verify.sh
# Requires no network access: the workspace has zero registry
# dependencies and must build with `--offline`.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --workspace --offline"
cargo test -q --workspace --offline

echo "==> hotpaths smoke sweep (threads 1, 2; checksum-gated; obs on)"
out="$(mktemp /tmp/evlab_hotpaths_smoke.XXXXXX.json)"
metrics="$(mktemp /tmp/evlab_hotpaths_obs.XXXXXX.json)"
trap 'rm -f "$out" "$metrics"' EXIT
EVLAB_OBS=1 cargo run -q --release --offline -p evlab-bench --bin hotpaths -- \
    --smoke --out "$out" --metrics "$metrics"

echo "==> obs_check: metrics parse + every pipeline stage reported activity"
cargo run -q --release --offline -p evlab-bench --bin obs_check -- "$metrics"

echo "==> OK: build, tests, hot-path determinism and stage observability all pass"
