#!/usr/bin/env bash
# Offline verification gate for evlab.
#
# Runs the hermetic build, the full workspace test suite and a smoke
# sweep of the `hotpaths` benchmark at EVLAB_THREADS ∈ {1, 2}. The
# hotpaths binary exits non-zero if any thread count produces output
# whose checksum differs from the serial run, so a determinism
# regression in any of the four parallelized hot paths fails this
# script.
#
# Usage: scripts/verify.sh
# Requires no network access: the workspace has zero registry
# dependencies and must build with `--offline`.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --workspace --offline"
cargo test -q --workspace --offline

echo "==> hotpaths smoke sweep (threads 1, 2; checksum-gated)"
out="$(mktemp /tmp/evlab_hotpaths_smoke.XXXXXX.json)"
trap 'rm -f "$out"' EXIT
cargo run -q --release --offline -p evlab-bench --bin hotpaths -- \
    --smoke --out "$out"

echo "==> OK: build, tests and hot-path determinism all pass"
